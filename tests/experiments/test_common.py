"""experiments.common satellites: partition-count dedup and sample drift."""

from __future__ import annotations

import warnings

import pytest

from repro.coding import CodingError, natural_partitions
from repro.experiments.clusters import build_cluster
from repro.experiments.common import (
    SampleCountDriftWarning,
    default_partitions,
    measure_timing_trace,
)


class TestDefaultPartitionsDeprecation:
    def test_delegates_to_natural_partitions(self):
        with pytest.deprecated_call():
            assert default_partitions(8) == natural_partitions("heter_aware", 8)
        with pytest.deprecated_call():
            assert default_partitions(5, multiplier=3) == natural_partitions(
                "heter_aware", 5, heter_multiplier=3
            )

    def test_still_validates_arguments(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(CodingError):
                default_partitions(0)
            with pytest.raises(CodingError):
                default_partitions(4, multiplier=0)


class TestSampleCountDrift:
    def test_divisible_total_is_silent(self):
        cluster = build_cluster("Cluster-A", rng=0)
        with warnings.catch_warnings():
            warnings.simplefilter("error", SampleCountDriftWarning)
            trace = measure_timing_trace(
                "heter_aware",
                cluster,
                num_stragglers=1,
                total_samples=1024,  # divisible by k = 16
                num_iterations=1,
                seed=0,
            )
        assert trace.metadata["effective_total_samples"] == 1024
        assert trace.metadata["total_samples"] == 1024

    def test_indivisible_total_warns_and_records_effective(self):
        cluster = build_cluster("Cluster-A", rng=0)
        with pytest.warns(SampleCountDriftWarning, match="1000"):
            trace = measure_timing_trace(
                "heter_aware",
                cluster,
                num_stragglers=1,
                total_samples=1000,  # k = 16 -> 62 * 16 = 992
                num_iterations=1,
                seed=0,
            )
        assert trace.metadata["total_samples"] == 1000
        assert trace.metadata["effective_total_samples"] == 992
        assert trace.metadata["effective_total_samples"] % 16 == 0

    def test_num_workers_recorded(self):
        cluster = build_cluster("Cluster-A", rng=0)
        trace = measure_timing_trace(
            "naive", cluster, num_stragglers=0, total_samples=64,
            num_iterations=1, seed=0,
        )
        assert trace.metadata["num_workers"] == cluster.num_workers


class TestKernelCacheRouting:
    """PR 4 bugfix: bare measure_timing_trace calls share the process cache."""

    def kwargs(self) -> dict:
        return dict(
            num_stragglers=1, total_samples=2048, num_iterations=8, seed=0
        )

    def test_default_routes_through_process_wide_cache(self):
        import numpy as np

        from repro.simulation.vectorized import default_timing_kernel_cache

        cache = default_timing_kernel_cache()
        cache.clear()
        cluster = build_cluster("Cluster-A", rng=0)
        first = measure_timing_trace("heter_aware", cluster, **self.kwargs())
        assert cache.misses == 1
        second = measure_timing_trace("heter_aware", cluster, **self.kwargs())
        assert cache.hits == 1  # the decoder and order cache were reused
        np.testing.assert_array_equal(first.durations, second.durations)
        cache.clear()

    def test_engine_and_bare_calls_share_one_cache(self):
        from repro.api import Engine
        from repro.simulation.vectorized import default_timing_kernel_cache

        assert Engine.timing_kernel_cache() is default_timing_kernel_cache()

    def test_opt_out_builds_fresh_kernels(self):
        import numpy as np

        from repro.simulation.vectorized import default_timing_kernel_cache

        cache = default_timing_kernel_cache()
        cache.clear()
        cluster = build_cluster("Cluster-A", rng=0)
        cached = measure_timing_trace(
            "heter_aware", cluster, kernel_cache=False, **self.kwargs()
        )
        assert len(cache) == 0 and cache.misses == 0  # untouched
        default = measure_timing_trace("heter_aware", cluster, **self.kwargs())
        # Results never depend on the caching choice.
        np.testing.assert_array_equal(cached.durations, default.durations)
        cache.clear()

    def test_explicit_cache_instance_still_respected(self):
        from repro.simulation.vectorized import TimingKernelCache

        mine = TimingKernelCache()
        cluster = build_cluster("Cluster-A", rng=0)
        measure_timing_trace(
            "heter_aware", cluster, kernel_cache=mine, **self.kwargs()
        )
        assert len(mine) == 1 and mine.misses == 1
