"""experiments.common satellites: partition-count dedup and sample drift."""

from __future__ import annotations

import warnings

import pytest

from repro.coding import CodingError, natural_partitions
from repro.experiments.clusters import build_cluster
from repro.experiments.common import (
    SampleCountDriftWarning,
    default_partitions,
    measure_timing_trace,
)


class TestDefaultPartitionsDeprecation:
    def test_delegates_to_natural_partitions(self):
        with pytest.deprecated_call():
            assert default_partitions(8) == natural_partitions("heter_aware", 8)
        with pytest.deprecated_call():
            assert default_partitions(5, multiplier=3) == natural_partitions(
                "heter_aware", 5, heter_multiplier=3
            )

    def test_still_validates_arguments(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(CodingError):
                default_partitions(0)
            with pytest.raises(CodingError):
                default_partitions(4, multiplier=0)


class TestSampleCountDrift:
    def test_divisible_total_is_silent(self):
        cluster = build_cluster("Cluster-A", rng=0)
        with warnings.catch_warnings():
            warnings.simplefilter("error", SampleCountDriftWarning)
            trace = measure_timing_trace(
                "heter_aware",
                cluster,
                num_stragglers=1,
                total_samples=1024,  # divisible by k = 16
                num_iterations=1,
                seed=0,
            )
        assert trace.metadata["effective_total_samples"] == 1024
        assert trace.metadata["total_samples"] == 1024

    def test_indivisible_total_warns_and_records_effective(self):
        cluster = build_cluster("Cluster-A", rng=0)
        with pytest.warns(SampleCountDriftWarning, match="1000"):
            trace = measure_timing_trace(
                "heter_aware",
                cluster,
                num_stragglers=1,
                total_samples=1000,  # k = 16 -> 62 * 16 = 992
                num_iterations=1,
                seed=0,
            )
        assert trace.metadata["total_samples"] == 1000
        assert trace.metadata["effective_total_samples"] == 992
        assert trace.metadata["effective_total_samples"] % 16 == 0

    def test_num_workers_recorded(self):
        cluster = build_cluster("Cluster-A", rng=0)
        trace = measure_timing_trace(
            "naive", cluster, num_stragglers=0, total_samples=64,
            num_iterations=1, seed=0,
        )
        assert trace.metadata["num_workers"] == cluster.num_workers
