"""Tests for the golden fixed-seed report (repro golden / CI golden job)."""

from __future__ import annotations

import json
import warnings

import pytest

from repro.cli import main
from repro.experiments.golden import (
    compare_golden_reports,
    generate_golden_report,
    write_golden_report,
)


@pytest.fixture(scope="module")
def report():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return json.loads(json.dumps(generate_golden_report()))


class TestGoldenReport:
    def test_covers_every_figure_and_both_rng_versions(self, report):
        prefixes = {name.split("/")[0] for name in report["runs"]}
        assert prefixes == {"fig2", "fig3", "fig4", "fig5"}
        assert any(name.endswith("/v1") for name in report["runs"])
        assert any(name.endswith("/v2") for name in report["runs"])
        # The SSP family's batched engine is pinned too.
        assert "fig4/ssp/v2" in report["runs"]
        assert "fig4/async/v2" in report["runs"]
        assert "fig4/dyn_ssp/v2" in report["runs"]
        assert set(report["table2"]["num_workers"]) == {
            "Cluster-A", "Cluster-B", "Cluster-C", "Cluster-D",
        }

    def test_regeneration_is_deterministic(self, report):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            again = json.loads(json.dumps(generate_golden_report()))
        text, diffs = compare_golden_reports(report, again)
        assert diffs == [], text

    def test_numeric_drift_is_detected(self, report):
        mutated = json.loads(json.dumps(report))
        name = next(iter(mutated["runs"]))
        mutated["runs"][name]["trace"]["records"][0]["duration"] *= 1.5
        _, diffs = compare_golden_reports(report, mutated)
        assert len(diffs) == 1
        assert "duration" in diffs[0]

    def test_tiny_float_noise_is_tolerated(self, report):
        mutated = json.loads(json.dumps(report))
        name = next(iter(mutated["runs"]))
        record = mutated["runs"][name]["trace"]["records"][0]
        record["duration"] *= 1.0 + 1e-13  # sub-tolerance BLAS-style noise
        _, diffs = compare_golden_reports(report, mutated)
        assert diffs == []

    def test_nan_versus_number_is_a_difference(self, report):
        """A regression driving a recorded value to NaN must not slip
        through the numeric comparison (NaN comparisons are all falsy)."""
        mutated = json.loads(json.dumps(report))
        name = next(iter(mutated["runs"]))
        record = mutated["runs"][name]["trace"]["records"][0]
        record["duration"] = float("nan")
        _, diffs = compare_golden_reports(report, mutated)
        assert len(diffs) == 1 and "duration" in diffs[0]
        # ...in both directions.
        _, diffs = compare_golden_reports(mutated, report)
        assert len(diffs) == 1

    def test_structural_changes_are_detected(self, report):
        mutated = json.loads(json.dumps(report))
        name = next(iter(mutated["runs"]))
        del mutated["runs"][name]
        mutated["runs"]["fig9/new"] = {"trace": {}}
        _, diffs = compare_golden_reports(report, mutated)
        assert any("missing key" in diff for diff in diffs)
        assert any("unexpected key" in diff for diff in diffs)


class TestGoldenCli:
    def test_write_then_check_round_trip(self, tmp_path, capsys):
        golden_path = tmp_path / "golden.json"
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert main(["golden", "--output", str(golden_path)]) == 0
            assert main(["golden", "--check", str(golden_path)]) == 0
        out = capsys.readouterr().out
        assert "no differences" in out

    def test_check_failure_exits_nonzero_and_writes_diff(
        self, tmp_path, capsys, report
    ):
        mutated = json.loads(json.dumps(report))
        name = next(iter(mutated["runs"]))
        mutated["runs"][name]["trace"]["records"][0]["duration"] += 1.0
        golden_path = tmp_path / "golden.json"
        write_golden_report(mutated, str(golden_path))
        diff_path = tmp_path / "diff.txt"
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            code = main([
                "golden", "--check", str(golden_path),
                "--diff-output", str(diff_path),
            ])
        assert code == 1
        assert diff_path.exists()
        assert "difference" in diff_path.read_text()
        assert "difference" in capsys.readouterr().out
