"""``repro golden --include-plugins``: third-party registrations are gated.

A plugin scheme/protocol registered through the public registry decorators
must show up in the golden report when (and only when) plugin snapshots are
requested — at both RNG stream layouts, deterministically, and recorded by
name — so a stacked-path refactor that perturbs the generic fallbacks these
plugins run through fails the golden CI job instead of slipping by.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

import pytest

from repro._registry import PROTOCOLS, SCHEMES
from repro.cli import main
from repro.coding.naive import naive_strategy
from repro.coding.registry import register_scheme
from repro.experiments.golden import compare_golden_reports, generate_golden_report
from repro.protocols.coded import NaiveBSPProtocol
from repro.protocols.runner import register_protocol

SCHEME_NAME = "golden_test_scheme"
PROTOCOL_NAME = "golden_test_protocol"

GOLDEN_PATH = str(Path(__file__).resolve().parents[2] / "goldens" / "experiments.json")


@pytest.fixture()
def plugin_registrations():
    @register_scheme(SCHEME_NAME, partitioning="uniform")
    def _build_scheme(throughputs, num_partitions, num_stragglers, rng=None):
        return naive_strategy(len(throughputs), num_partitions)

    @register_protocol(PROTOCOL_NAME)
    def _build_protocol(ssp_staleness, ssp_batch_size):
        return NaiveBSPProtocol()

    try:
        yield
    finally:
        SCHEMES.unregister(SCHEME_NAME)
        PROTOCOLS.unregister(PROTOCOL_NAME)


def quiet_report(**kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return json.loads(json.dumps(generate_golden_report(**kwargs)))


class TestIncludePlugins:
    def test_plugins_are_snapshotted_at_both_rng_versions(
        self, plugin_registrations
    ):
        report = quiet_report(include_plugins=True)
        for version in (1, 2):
            assert f"plugins/scheme/{SCHEME_NAME}/v{version}" in report["runs"]
            assert f"plugins/protocol/{PROTOCOL_NAME}/v{version}" in report["runs"]
        assert report["plugins"] == {
            "schemes": [SCHEME_NAME],
            "protocols": [PROTOCOL_NAME],
        }

    def test_plugin_snapshots_are_deterministic(self, plugin_registrations):
        first = quiet_report(include_plugins=True)
        again = quiet_report(include_plugins=True)
        text, diffs = compare_golden_reports(first, again)
        assert diffs == [], text

    def test_builtins_are_never_treated_as_plugins(self):
        report = quiet_report(include_plugins=True)
        assert report["plugins"] == {"schemes": [], "protocols": []}
        assert not any(name.startswith("plugins/") for name in report["runs"])

    def test_default_report_omits_the_plugins_section(self, plugin_registrations):
        report = quiet_report()
        assert "plugins" not in report
        assert not any(name.startswith("plugins/") for name in report["runs"])

    def test_loaded_plugins_fail_a_pluginless_golden(self, plugin_registrations):
        # The recorded names make plugin drift structural: a report taken
        # with plugins loaded cannot silently pass against one without.
        without = quiet_report(include_plugins=True)
        SCHEMES.unregister(SCHEME_NAME)
        PROTOCOLS.unregister(PROTOCOL_NAME)
        try:
            baseline = quiet_report(include_plugins=True)
        finally:
            register_scheme(SCHEME_NAME, partitioning="uniform")(
                lambda throughputs, num_partitions, num_stragglers, rng=None: (
                    naive_strategy(len(throughputs), num_partitions)
                )
            )
            register_protocol(PROTOCOL_NAME)(
                lambda ssp_staleness, ssp_batch_size: NaiveBSPProtocol()
            )
        _, diffs = compare_golden_reports(baseline, without)
        assert diffs  # extra runs + changed plugin name lists


class TestGoldenCliFlag:
    def test_check_passes_against_checked_in_golden(self):
        # No plugins are loaded in this repo, so --include-plugins checks
        # clean against the committed report (which has the empty section).
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            code = main(
                ["golden", "--check", GOLDEN_PATH,
                 "--include-plugins"]
            )
        assert code == 0

    def test_check_flags_unsnapshotted_plugins(
        self, plugin_registrations, tmp_path, capsys
    ):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            code = main(
                ["golden", "--check", GOLDEN_PATH,
                 "--include-plugins",
                 "--diff-output", str(tmp_path / "diff.txt")]
            )
        assert code == 1
        assert SCHEME_NAME in capsys.readouterr().out
