"""Golden equality: columnar traces serialize identically to record traces.

For every figure experiment of the paper (Figs. 2-5 and the Table II
clusters), run a fixed-seed, CI-sized configuration and assert that the
trace each run produces serializes to **byte-identical JSON** whether read
through the columnar store (``to_dict`` straight from the columns) or
rebuilt record by record through the compatibility view.  This pins the
columnar rewrite to the exact serialization contract of the record-based
layout on real experiment output — every scheme, stalls included.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.api import Engine, RunSpec, StragglerSpec
from repro.experiments.fig4_loss_curve import run_fig4
from repro.experiments.table2_clusters import run_table2
from repro.simulation.trace import RunTrace, UnknownTraceFieldWarning

SCHEMES = ("naive", "cyclic", "heter_aware", "group_based")


def assert_columnar_equals_record_json(trace: RunTrace) -> None:
    """to_dict from columns == to_dict from a record-by-record rebuild."""
    columnar_json = json.dumps(trace.to_dict())
    rebuilt = RunTrace(
        scheme=trace.scheme,
        cluster_name=trace.cluster_name,
        metadata=dict(trace.metadata),
    )
    for record in trace.records:  # materialize the compatibility view
        rebuilt.append(record)
    assert json.dumps(rebuilt.to_dict()) == columnar_json
    # And the JSON round-trip is silent (no unknown-key warnings) and stable.
    with warnings.catch_warnings():
        warnings.simplefilter("error", UnknownTraceFieldWarning)
        reparsed = RunTrace.from_dict(json.loads(columnar_json))
    assert json.dumps(reparsed.to_dict()) == columnar_json


@pytest.fixture(scope="module")
def figure_traces():
    """CI-sized traces in every figure experiment's configuration shape.

    The per-figure modules (Figs. 2/3/5) reduce their runs to scalar
    summaries, so the traces are produced through the identical
    :class:`RunSpec` shapes each figure submits to the engine — every
    scheme, both RNG versions for the fig2 shape, the fault (``inf``
    delay) cells included — plus the real ``run_fig4`` training traces.
    """
    engine = Engine()
    traces = {}
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        for scheme in SCHEMES:
            # Fig. 2 shape: artificial delays on Cluster-A, incl. a fault.
            for delay in (0.0, 1.0, float("inf")):
                for rng_version in (1, 2):
                    spec = RunSpec(
                        scheme=scheme, cluster="Cluster-A", num_iterations=5,
                        total_samples=2048, seed=0, rng_version=rng_version,
                        straggler=StragglerSpec(
                            "artificial_delay",
                            {"num_stragglers": 1, "delay_seconds": delay},
                        ),
                    )
                    traces[f"fig2/{scheme}/{delay}/v{rng_version}"] = (
                        engine.run(spec).trace
                    )
            # Fig. 3 shape: transient slowdowns across clusters.
            for cluster in ("Cluster-A", "Cluster-B"):
                spec = RunSpec(
                    scheme=scheme, cluster=cluster, num_iterations=5,
                    total_samples=4096, seed=0,
                    straggler=StragglerSpec(
                        "transient",
                        {"probability": 0.05, "mean_delay_seconds": 0.5},
                    ),
                )
                traces[f"fig3/{cluster}/{scheme}"] = engine.run(spec).trace
            # Fig. 5 shape: heavier transient interference, big payloads.
            spec = RunSpec(
                scheme=scheme, cluster="Cluster-A", num_iterations=5,
                total_samples=2048, seed=0, gradient_bytes=8.0 * 65536,
                straggler=StragglerSpec(
                    "transient", {"probability": 0.2, "mean_delay_seconds": 1.0}
                ),
            )
            traces[f"fig5/{scheme}"] = engine.run(spec).trace
        # Fig. 4: the real experiment module (training traces incl. SSP).
        fig4 = run_fig4(
            cluster_name="Cluster-A", num_samples=256, num_iterations=4,
            loss_eval_samples=64, seed=0,
        )
        for scheme, trace in fig4.traces.items():
            traces[f"fig4/{scheme}"] = trace
    return traces


class TestFigureTraceGoldenEquality:
    def test_every_figure_trace_collected(self, figure_traces):
        prefixes = {key.split("/")[0] for key in figure_traces}
        assert prefixes == {"fig2", "fig3", "fig4", "fig5"}
        assert len(figure_traces) > 20

    def test_columnar_json_equals_record_json(self, figure_traces):
        for name, trace in figure_traces.items():
            assert_columnar_equals_record_json(trace)

    def test_stalled_runs_included(self, figure_traces):
        """The inf-delay fig2 cells exercise stalls through serialization."""
        stalled = [
            trace
            for name, trace in figure_traces.items()
            if name.startswith("fig2/naive/inf")
        ]
        assert stalled and all(not trace.completed for trace in stalled)

    def test_table2_clusters_unchanged(self):
        result = run_table2(seed=0)
        assert set(result.num_workers) == {
            "Cluster-A", "Cluster-B", "Cluster-C", "Cluster-D",
        }
        assert result.num_workers["Cluster-D"] == 58
