"""Property tests for the ``rng_version`` contract.

Two guarantees are locked in here:

* **v1 bit-identity** — ``rng_version=1`` traces are bit-identical to the
  pre-vectorization reference implementation for *every* registered
  straggler model on *every* Table II cluster, so this PR (and any future
  one) cannot silently move the historical stream layout.
* **v1/v2 statistical equivalence** — at matched seeds the two layouts
  draw from identical marginal distributions; means of durations and
  per-worker compute times must agree within Monte-Carlo tolerance.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro._reference import measure_timing_trace_reference
from repro.api.builders import build_injector
from repro.api.registry import CLUSTERS, STRAGGLER_MODELS
from repro.api.spec import StragglerSpec
from repro.experiments.clusters import build_cluster
from repro.experiments.common import SampleCountDriftWarning, measure_timing_trace

#: (kind, params) for every registered straggler model, with parameters
#: chosen so each model actually fires.
INJECTOR_CASES = [
    ("none", {}),
    ("artificial_delay", {"num_stragglers": 1, "delay_seconds": 1.0}),
    ("transient", {"probability": 0.3, "mean_delay_seconds": 0.5}),
    (
        "bursty",
        {"enter_probability": 0.2, "exit_probability": 0.4, "mean_delay_seconds": 0.5},
    ),
    ("fail_stop", {"failures": {"0": 3}}),
    (
        "composite",
        {
            "parts": [
                {"kind": "artificial_delay",
                 "params": {"num_stragglers": 1, "delay_seconds": 0.5}},
                {"kind": "transient",
                 "params": {"probability": 0.2, "mean_delay_seconds": 0.3}},
            ]
        },
    ),
]

CLUSTER_NAMES = ("Cluster-A", "Cluster-B", "Cluster-C", "Cluster-D")


def test_cases_cover_every_registered_injector():
    assert {kind for kind, _ in INJECTOR_CASES} == set(STRAGGLER_MODELS.names())


def test_cases_cover_every_registered_cluster():
    assert set(CLUSTER_NAMES) == set(CLUSTERS.names())


def fresh_injector(kind: str, params: dict):
    """A fresh injector per run (stateful models must not share state)."""
    return build_injector(StragglerSpec(kind=kind, params=dict(params)))


def traces_bit_identical(a, b) -> bool:
    if not np.array_equal(a.durations, b.durations):
        return False
    for ra, rb in zip(a.records, b.records):
        if ra.compute_times != rb.compute_times:
            return False
        if ra.completion_times != rb.completion_times:
            return False
        if ra.workers_used != rb.workers_used or ra.used_group != rb.used_group:
            return False
    return a.metadata == b.metadata


class TestV1BitIdentity:
    @pytest.mark.parametrize("cluster_name", CLUSTER_NAMES)
    @pytest.mark.parametrize("kind,params", INJECTOR_CASES)
    def test_v1_matches_pre_vectorization_reference(
        self, cluster_name, kind, params
    ):
        cluster = build_cluster(cluster_name, rng=0)
        kwargs = dict(
            num_stragglers=1,
            total_samples=2048,
            num_iterations=12,
            gradient_bytes=8.0 * 4096,
            seed=7,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", SampleCountDriftWarning)
            reference = measure_timing_trace_reference(
                "heter_aware", cluster,
                injector=fresh_injector(kind, params), **kwargs,
            )
            current = measure_timing_trace(
                "heter_aware", cluster,
                injector=fresh_injector(kind, params), **kwargs,
            )
        assert traces_bit_identical(reference, current)

    @pytest.mark.parametrize("scheme", ["naive", "cyclic", "group_based"])
    def test_v1_matches_reference_across_schemes(self, scheme):
        cluster = build_cluster("Cluster-A", rng=0)
        kwargs = dict(
            num_stragglers=0 if scheme == "naive" else 1,
            total_samples=2048,
            num_iterations=15,
            seed=3,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", SampleCountDriftWarning)
            reference = measure_timing_trace_reference(
                scheme, cluster,
                injector=fresh_injector("artificial_delay",
                                        {"num_stragglers": 1, "delay_seconds": 2.0}),
                **kwargs,
            )
            current = measure_timing_trace(
                scheme, cluster,
                injector=fresh_injector("artificial_delay",
                                        {"num_stragglers": 1, "delay_seconds": 2.0}),
                **kwargs,
            )
        assert traces_bit_identical(reference, current)


class TestV1V2StatisticalEquivalence:
    @pytest.mark.parametrize("kind,params", INJECTOR_CASES)
    def test_matched_seed_marginals_agree(self, kind, params):
        cluster = build_cluster("Cluster-A", rng=0)
        kwargs = dict(
            num_stragglers=1,
            total_samples=2048,
            num_iterations=600,
            seed=0,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", SampleCountDriftWarning)
            v1 = measure_timing_trace(
                "heter_aware", cluster,
                injector=fresh_injector(kind, params), rng_version=1, **kwargs,
            )
            v2 = measure_timing_trace(
                "heter_aware", cluster,
                injector=fresh_injector(kind, params), rng_version=2, **kwargs,
            )
        d1, d2 = v1.durations, v2.durations
        finite1, finite2 = np.isfinite(d1), np.isfinite(d2)
        assert abs(finite1.mean() - finite2.mean()) < 0.05
        assert d2[finite2].mean() == pytest.approx(d1[finite1].mean(), rel=0.10)
        compute1 = np.array([r.compute_times for r in v1.records])
        compute2 = np.array([r.compute_times for r in v2.records])
        assert compute2.mean(axis=0) == pytest.approx(
            compute1.mean(axis=0), rel=0.05
        )

    def test_v2_is_deterministic_and_differs_from_v1(self):
        cluster = build_cluster("Cluster-A", rng=0)
        kwargs = dict(
            num_stragglers=1, total_samples=2048, num_iterations=25, seed=0,
            injector=None,
        )
        v2a = measure_timing_trace("heter_aware", cluster, rng_version=2, **kwargs)
        v2b = measure_timing_trace("heter_aware", cluster, rng_version=2, **kwargs)
        v1 = measure_timing_trace("heter_aware", cluster, rng_version=1, **kwargs)
        assert np.array_equal(v2a.durations, v2b.durations)
        assert not np.array_equal(v1.durations, v2a.durations)
        assert v2a.metadata["rng_version"] == 2
        assert "rng_version" not in v1.metadata

    def test_unknown_rng_version_rejected(self):
        cluster = build_cluster("Cluster-A", rng=0)
        with pytest.raises(ValueError, match="rng_version"):
            measure_timing_trace(
                "heter_aware", cluster, num_stragglers=1,
                total_samples=2048, num_iterations=5, rng_version=3,
            )
