"""Unit tests for the Table II cluster registry and the workload presets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.clusters import (
    CLUSTER_NAMES,
    TABLE_II,
    build_all_clusters,
    build_cluster,
)
from repro.experiments.workloads import WORKLOADS, get_workload


class TestTableII:
    def test_four_clusters(self):
        assert CLUSTER_NAMES == ("Cluster-A", "Cluster-B", "Cluster-C", "Cluster-D")

    def test_worker_counts_match_table(self):
        expected = {"Cluster-A": 8, "Cluster-B": 16, "Cluster-C": 32, "Cluster-D": 58}
        for name, count in expected.items():
            assert sum(TABLE_II[name].values()) == count

    def test_vcpu_compositions_match_paper(self):
        assert TABLE_II["Cluster-A"] == {2: 2, 4: 2, 8: 3, 12: 1, 16: 0}
        assert TABLE_II["Cluster-B"] == {2: 2, 4: 4, 8: 8, 12: 0, 16: 2}
        assert TABLE_II["Cluster-C"] == {2: 1, 4: 4, 8: 10, 12: 12, 16: 5}
        assert TABLE_II["Cluster-D"] == {2: 0, 4: 4, 8: 20, 12: 18, 16: 16}


class TestBuildCluster:
    def test_build_by_name(self):
        cluster = build_cluster("Cluster-A", rng=0)
        assert cluster.num_workers == 8
        assert cluster.name == "Cluster-A"

    def test_build_all(self):
        clusters = build_all_clusters(rng=0)
        assert {c.num_workers for c in clusters.values()} == {8, 16, 32, 58}

    def test_throughput_scales_with_vcpus(self):
        cluster = build_cluster("Cluster-A", rng=0, machine_spread=0.0)
        speeds = cluster.true_throughputs
        vcpus = np.array(cluster.vcpu_counts)
        ratio = speeds / vcpus
        assert np.allclose(ratio, ratio[0])

    def test_custom_composition(self):
        cluster = build_cluster("tiny", vcpu_counts={2: 1, 4: 1}, rng=0)
        assert cluster.num_workers == 2

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            build_cluster("Cluster-Z")

    def test_deterministic_per_seed(self):
        a = build_cluster("Cluster-B", rng=3)
        b = build_cluster("Cluster-B", rng=3)
        assert np.allclose(a.true_throughputs, b.true_throughputs)


class TestWorkloads:
    def test_registry_contents(self):
        assert {
            "blobs_softmax",
            "cifar10_softmax",
            "cifar10_mlp",
            "imagenet_cnn",
        } <= set(WORKLOADS)

    def test_get_workload_unknown(self):
        with pytest.raises(KeyError):
            get_workload("mnist")

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_dataset_and_model_compatible(self, name):
        workload = get_workload(name)
        dataset = workload.make_dataset(num_samples=40, seed=0)
        model = workload.make_model(dataset, seed=0)
        loss, grad = model.loss_and_gradient(dataset.features[:8], dataset.labels[:8])
        assert np.isfinite(loss)
        assert grad.shape == (model.num_parameters,)

    def test_default_samples_used(self):
        workload = get_workload("blobs_softmax")
        dataset = workload.make_dataset(seed=0)
        assert dataset.num_samples == workload.default_samples

    def test_dataset_deterministic(self):
        workload = get_workload("cifar10_softmax")
        a = workload.make_dataset(num_samples=16, seed=5)
        b = workload.make_dataset(num_samples=16, seed=5)
        assert np.array_equal(a.features, b.features)
