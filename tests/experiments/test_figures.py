"""Tests for the per-figure experiment harnesses (small-scale runs).

These tests run every figure's ``run_*`` function at a deliberately small
scale and assert the *qualitative shape* the paper reports — who wins, what
grows, what stays flat — not absolute numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    measure_timing_trace,
    report_estimation_error,
    report_fig2,
    report_fig3,
    report_fig4,
    report_fig5,
    report_optimality_sweep,
    report_table2,
    run_estimation_error_sweep,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_optimality_sweep,
    run_table2,
)
from repro.experiments.clusters import build_cluster


class TestMeasureTimingTrace:
    def test_trace_shape(self):
        cluster = build_cluster("Cluster-A", rng=0)
        trace = measure_timing_trace(
            "heter_aware",
            cluster,
            num_stragglers=1,
            total_samples=1024,
            num_iterations=5,
            seed=0,
        )
        assert trace.num_iterations == 5
        assert trace.metadata["mode"] == "timing_only"
        assert np.all(np.isfinite(trace.durations))

    def test_scheme_partition_conventions(self):
        cluster = build_cluster("Cluster-A", rng=0)
        cyclic = measure_timing_trace(
            "cyclic", cluster, 1, total_samples=1024, num_iterations=2, seed=0
        )
        heter = measure_timing_trace(
            "heter_aware", cluster, 1, total_samples=1024, num_iterations=2, seed=0
        )
        assert cyclic.metadata["num_partitions"] == cluster.num_workers
        assert heter.metadata["num_partitions"] == 2 * cluster.num_workers

    def test_rejects_bad_arguments(self):
        cluster = build_cluster("Cluster-A", rng=0)
        with pytest.raises(ValueError):
            measure_timing_trace("naive", cluster, 0, total_samples=0, num_iterations=2)
        with pytest.raises(ValueError):
            measure_timing_trace("naive", cluster, 0, total_samples=10, num_iterations=0)


class TestTable2:
    def test_report_contains_every_cluster(self):
        result = run_table2()
        text = report_table2(result)
        for name in ("Cluster-A", "Cluster-B", "Cluster-C", "Cluster-D"):
            assert name in text

    def test_worker_counts(self):
        result = run_table2()
        assert result.num_workers["Cluster-A"] == 8
        assert result.num_workers["Cluster-D"] == 58

    def test_heterogeneity_above_one(self):
        result = run_table2()
        assert all(ratio > 1.0 for ratio in result.heterogeneity_ratio.values())


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig2(
            num_stragglers=1,
            delays=(0.0, 2.0, float("inf")),
            num_iterations=6,
            total_samples=1024,
            seed=0,
        )

    def test_naive_grows_with_delay_and_stalls_on_fault(self, result):
        naive = result.mean_times["naive"]
        assert naive[1] > naive[0]
        assert np.isinf(naive[-1])

    def test_coded_schemes_stay_flat(self, result):
        for scheme in ("heter_aware", "group_based"):
            times = result.mean_times[scheme]
            assert np.isfinite(times[-1])
            assert times[-1] < 1.5 * times[0]

    def test_heter_aware_beats_cyclic_at_fault(self, result):
        fault = len(result.delays) - 1
        assert result.speedup_over("cyclic", "heter_aware", fault) > 1.5

    def test_report_renders(self, result):
        text = report_fig2(result)
        assert "Fig. 2" in text
        assert "fault" in text


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3(
            clusters=("Cluster-A", "Cluster-B"),
            num_iterations=5,
            total_samples=1024,
            seed=0,
        )

    def test_heter_family_fastest_everywhere(self, result):
        for cluster in result.clusters:
            fastest = result.fastest_scheme(cluster)
            assert fastest in ("heter_aware", "group_based")

    def test_worker_counts_recorded(self, result):
        assert result.num_workers["Cluster-A"] == 8
        assert result.num_workers["Cluster-B"] == 16

    def test_report_renders(self, result):
        assert "Fig. 3" in report_fig3(result)


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4(
            schemes=("naive", "cyclic", "heter_aware", "group_based", "ssp"),
            cluster_name="Cluster-A",
            workload="blobs_softmax",
            num_samples=256,
            num_iterations=6,
            loss_eval_samples=128,
            num_grid_points=10,
            seed=0,
        )

    def test_all_schemes_have_curves(self, result):
        assert set(result.loss_curves) == set(result.schemes)
        for curve in result.loss_curves.values():
            assert curve.shape == result.time_grid.shape

    def test_losses_decrease_over_time(self, result):
        for scheme in ("naive", "heter_aware", "group_based"):
            curve = result.loss_curves[scheme]
            assert curve[-1] < curve[0]

    def test_heter_aware_auc_beats_naive(self, result):
        assert (
            result.area_under_curve["heter_aware"]
            <= result.area_under_curve["naive"] + 1e-9
        )

    def test_ranking_has_all_schemes(self, result):
        assert sorted(result.ranking()) == sorted(result.schemes)

    def test_report_renders(self, result):
        text = report_fig4(result)
        assert "Fig. 4" in text
        assert "ranking" in text


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5(num_iterations=8, total_samples=1024, seed=0)

    def test_naive_has_lowest_usage(self, result):
        naive = result.resource_usage["naive"]
        assert all(
            naive <= result.resource_usage[s] + 1e-9
            for s in result.schemes
            if s != "naive"
        )

    def test_heter_family_highest_usage(self, result):
        assert result.best_scheme() in ("heter_aware", "group_based")

    def test_usages_are_fractions(self, result):
        for usage in result.resource_usage.values():
            assert 0.0 < usage <= 1.0

    def test_report_renders(self, result):
        assert "Fig. 5" in report_fig5(result)


class TestSweeps:
    def test_estimation_error_sweep_shape(self):
        result = run_estimation_error_sweep(
            error_levels=(0.0, 0.3),
            num_iterations=5,
            total_samples=1024,
            seed=0,
        )
        assert result.error_levels == (0.0, 0.3)
        for scheme in result.schemes:
            assert len(result.mean_times[scheme]) == 2
            assert all(np.isfinite(t) for t in result.mean_times[scheme])
        assert "ablation" in report_estimation_error(result)

    def test_optimality_sweep(self):
        result = run_optimality_sweep(num_trials=3, num_workers=6, seed=0)
        assert result.mean_ratio("heter_aware") < result.mean_ratio("cyclic")
        assert result.mean_ratio("heter_aware") < 1.35
        assert "Theorem 5" in report_optimality_sweep(result)

    def test_communication_overlap_sweep(self):
        from repro.experiments import (
            report_communication_overlap,
            run_communication_overlap_sweep,
        )

        result = run_communication_overlap_sweep(
            overlap_fractions=(0.0, 1.0),
            num_iterations=5,
            total_samples=1024,
            seed=0,
        )
        assert len(result.mean_iteration_time) == 2
        assert result.mean_iteration_time[1] <= result.mean_iteration_time[0]
        assert result.resource_usage[1] >= result.resource_usage[0]
        assert "overlap" in report_communication_overlap(result)
