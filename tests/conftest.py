"""Shared pytest fixtures.

Fixtures deliberately use small problem sizes (a handful of workers, tens of
samples) so the whole suite stays fast; the scale-sensitive behaviour is
covered by the benchmarks instead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.learning.datasets import make_blobs
from repro.learning.models import SoftmaxClassifier
from repro.learning.partition import partition_dataset
from repro.simulation.cluster import ClusterSpec, cluster_from_vcpu_counts
from repro.simulation.workers import WorkerSpec


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def example_throughputs() -> list[float]:
    """The throughputs from the paper's Example 1: c = [1, 2, 3, 4, 4]."""
    return [1.0, 2.0, 3.0, 4.0, 4.0]


@pytest.fixture
def small_cluster() -> ClusterSpec:
    """A 5-worker heterogeneous cluster with exactly known throughputs."""
    workers = tuple(
        WorkerSpec(
            worker_id=i,
            vcpus=v,
            true_throughput=100.0 * v,
            compute_noise=0.0,
        )
        for i, v in enumerate([1, 2, 3, 4, 4])
    )
    return ClusterSpec(name="test-cluster", workers=workers)


@pytest.fixture
def heterogeneous_cluster() -> ClusterSpec:
    """An 8-worker cluster shaped like the paper's Cluster-A."""
    return cluster_from_vcpu_counts(
        "Cluster-A-like",
        {2: 2, 4: 2, 8: 3, 12: 1},
        samples_per_second_per_vcpu=50.0,
        machine_spread=0.05,
        compute_noise=0.02,
        rng=0,
    )


@pytest.fixture
def blob_dataset():
    """Small classification dataset shared by learning/protocol tests."""
    return make_blobs(num_samples=120, num_features=16, num_classes=4, rng=0)


@pytest.fixture
def partitioned_blobs(blob_dataset):
    """The blob dataset split into 10 partitions."""
    return partition_dataset(blob_dataset, 10, rng=0)


@pytest.fixture
def softmax_model(blob_dataset):
    """Softmax classifier sized for the blob dataset."""
    return SoftmaxClassifier(
        blob_dataset.num_features, blob_dataset.num_classes, rng=0
    )
