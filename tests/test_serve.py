"""The sweep server and its client: the engine as a service.

Two layers under test.  :class:`SweepService` is the transport-free core
(plain dicts in, plain dicts out), so its cache semantics are asserted
directly; on top, a real :class:`ThreadingHTTPServer` on an ephemeral
port exercises the full wire path through :class:`ServiceClient` —
including the headline contract that resubmitting an identical sweep is
answered entirely from the store with JSON-identical results.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.api import RunSpec, json_default
from repro.api.client import ClientError, ServiceClient
from repro.serve import ServiceError, SweepService, make_server
from repro.store import FileRunStore


def as_json(payload) -> str:
    # The same default= hook the HTTP layer uses: service-level payloads may
    # still carry numpy scalars in trace metadata.
    return json.dumps(payload, default=json_default)


@pytest.fixture()
def service(tmp_path) -> SweepService:
    return SweepService(store=FileRunStore(tmp_path / "store"))


@pytest.fixture()
def spec() -> RunSpec:
    return RunSpec(scheme="naive", num_iterations=3, total_samples=256, seed=0)


class TestService:
    def test_run_computes_then_caches(self, service, spec):
        first = service.handle_run({"spec": spec.to_dict()})
        assert first["cached"] is False
        assert first["fingerprint"] == spec.fingerprint()

        second = service.handle_run({"spec": spec.to_dict()})
        assert second["cached"] is True
        assert as_json(second["result"]) == as_json(first["result"])

    def test_run_seedless_is_never_cached(self, service, spec):
        payload = {"spec": spec.replace(seed=None).to_dict()}
        first = service.handle_run(payload)
        second = service.handle_run(payload)
        assert first["fingerprint"] is None
        assert second["cached"] is False
        assert service.store.fingerprints() == ()

    def test_sweep_resubmission_is_pure_hits(self, service, spec):
        payload = {"spec": spec.to_dict(), "axes": {"seed": [0, 1, 2]}}
        first = service.handle_sweep(payload)
        assert (first["hits"], first["misses"]) == (0, 3)

        second = service.handle_sweep(payload)
        assert (second["hits"], second["misses"]) == (3, 0)
        assert as_json(second["results"]) == as_json(first["results"])
        assert second["fingerprints"] == first["fingerprints"]
        assert all(fp is not None for fp in second["fingerprints"])

    def test_result_lookup(self, service, spec):
        run = service.handle_run({"spec": spec.to_dict()})
        found = service.handle_result(run["fingerprint"])
        assert found is not None
        assert as_json(found["result"]) == as_json(run["result"])
        assert service.handle_result("0" * 64) is None

    def test_health_reports_store_stats(self, service, spec):
        service.handle_run({"spec": spec.to_dict()})
        health = service.handle_health()
        assert health["status"] == "ok"
        assert health["store"]["entries"] == 1

    @pytest.mark.parametrize(
        "payload",
        [
            None,
            [],
            {},
            {"spec": {"scheme": "no-such-scheme", "seed": 0}},
            {"spec": {"not_a_field": 1}},
        ],
        ids=["none", "list", "no-spec-key", "unknown-scheme", "unknown-field"],
    )
    def test_bad_run_payloads_raise_service_error(self, service, payload):
        with pytest.raises(ServiceError):
            service.handle_run(payload)

    def test_bad_axes_raise_service_error(self, service, spec):
        with pytest.raises(ServiceError, match="axes"):
            service.handle_sweep({"spec": spec.to_dict(), "axes": {"seed": 0}})


@pytest.fixture()
def server(service):
    httpd = make_server(service=service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    try:
        yield ServiceClient(f"http://{host}:{port}")
    finally:
        httpd.shutdown()
        httpd.server_close()
        thread.join(timeout=5)


class TestHTTP:
    def test_health(self, server):
        health = server.health()
        assert health["status"] == "ok"

    def test_run_round_trip(self, server, spec):
        first = server.run(spec)
        assert first.cached is False
        assert first.fingerprint == spec.fingerprint()

        second = server.run(spec)
        assert second.cached is True
        assert second.result.to_json() == first.result.to_json()

    def test_sweep_resubmission_is_pure_hits(self, server, spec):
        first = server.sweep(spec, seed=[0, 1, 2])
        assert (first.hits, first.misses, first.uncacheable) == (0, 3, 0)

        second = server.sweep(spec, seed=[0, 1, 2])
        assert (second.hits, second.misses) == (3, 0)
        assert [r.to_json() for r in second.results] == [
            r.to_json() for r in first.results
        ]

    def test_result_endpoint(self, server, spec):
        response = server.run(spec)
        stored = server.result(response.fingerprint)
        assert stored is not None
        assert stored.to_json() == response.result.to_json()
        assert server.result("0" * 64) is None

    def test_bad_spec_maps_to_http_400(self, server, spec):
        bad = spec.to_dict()
        bad["scheme"] = "no-such-scheme"
        with pytest.raises(ClientError, match="HTTP 400"):
            server._request("POST", "/run", {"spec": bad})

    def test_unknown_endpoint_maps_to_http_404(self, server):
        with pytest.raises(ClientError, match="HTTP 404"):
            server._request("GET", "/nope")
        with pytest.raises(ClientError, match="HTTP 404"):
            server._request("POST", "/nope", {"x": 1})

    def test_empty_body_maps_to_http_400(self, server):
        with pytest.raises(ClientError, match="HTTP 400"):
            server._request("POST", "/run", payload=None)
