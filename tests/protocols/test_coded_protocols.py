"""Unit tests for the BSP protocols (naive and coded)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding import heterogeneity_aware_strategy
from repro.learning.datasets import make_blobs
from repro.learning.models import SoftmaxClassifier
from repro.learning.optimizers import SGD
from repro.learning.partition import partition_dataset
from repro.protocols.base import ProtocolError, TrainingConfig, evaluate_mean_loss
from repro.protocols.coded import CodedBSPProtocol, NaiveBSPProtocol
from repro.simulation.network import ZeroCommunication
from repro.simulation.stragglers import FailStop, NoStragglers


@pytest.fixture
def config():
    return TrainingConfig(
        num_iterations=5,
        num_stragglers=1,
        optimizer_factory=lambda: SGD(learning_rate=0.2),
        straggler_injector=NoStragglers(),
        network=ZeroCommunication(),
        seed=0,
    )


@pytest.fixture
def model(blob_dataset):
    return SoftmaxClassifier(blob_dataset.num_features, blob_dataset.num_classes, rng=0)


class TestTrainingConfig:
    def test_defaults_validated(self):
        with pytest.raises(ProtocolError):
            TrainingConfig(num_iterations=0)
        with pytest.raises(ProtocolError):
            TrainingConfig(num_stragglers=-1)
        with pytest.raises(ProtocolError):
            TrainingConfig(num_partitions=0)
        with pytest.raises(ProtocolError):
            TrainingConfig(partitions_multiplier=0)
        with pytest.raises(ProtocolError):
            TrainingConfig(record_loss_every=0)

    def test_resolve_partitions_by_scheme(self):
        config = TrainingConfig(partitions_multiplier=3)
        assert config.resolve_partitions(8, "naive") == 8
        assert config.resolve_partitions(8, "heter_aware") == 24

    def test_resolve_partitions_override(self):
        config = TrainingConfig(num_partitions=40)
        assert config.resolve_partitions(8, "naive") == 40

    def test_make_rng_streams_are_independent(self):
        config = TrainingConfig(seed=7)
        a = config.make_rng().normal(size=4)
        b = config.make_rng(stream_offset=99).normal(size=4)
        c = config.make_rng().normal(size=4)
        assert np.allclose(a, c)
        assert not np.allclose(a, b)

    def test_evaluate_mean_loss_subsampling(self, model, partitioned_blobs):
        full = evaluate_mean_loss(model, partitioned_blobs, max_samples=0)
        sub = evaluate_mean_loss(
            model, partitioned_blobs, max_samples=20, rng=np.random.default_rng(0)
        )
        assert np.isfinite(full) and np.isfinite(sub)
        # Subsampled estimate is in the same ballpark for an untrained model.
        assert sub == pytest.approx(full, rel=0.5)


class TestCodedBSPProtocol:
    def test_trace_has_one_record_per_iteration(
        self, model, partitioned_blobs, small_cluster, config
    ):
        protocol = CodedBSPProtocol(scheme="heter_aware")
        trace = protocol.run(model, partitioned_blobs, small_cluster, config)
        assert trace.num_iterations == config.num_iterations
        assert trace.completed
        assert trace.scheme == "heter_aware"

    def test_training_reduces_loss(
        self, model, partitioned_blobs, small_cluster, config
    ):
        protocol = CodedBSPProtocol(scheme="heter_aware")
        trace = protocol.run(model, partitioned_blobs, small_cluster, config)
        assert trace.losses[-1] < trace.losses[0]

    def test_identical_updates_across_coded_schemes(
        self, blob_dataset, small_cluster, config
    ):
        """All coded BSP schemes apply the same gradients => same final model."""
        partitioned = partition_dataset(blob_dataset, 10, rng=0)
        finals = {}
        for scheme in ("naive", "heter_aware", "group_based"):
            model = SoftmaxClassifier(
                blob_dataset.num_features, blob_dataset.num_classes, rng=0
            )
            CodedBSPProtocol(scheme=scheme).run(
                model, partitioned, small_cluster, config
            )
            finals[scheme] = model.parameters()
        assert np.allclose(finals["naive"], finals["heter_aware"], atol=1e-8)
        assert np.allclose(finals["naive"], finals["group_based"], atol=1e-8)

    def test_naive_stalls_on_fault(self, model, partitioned_blobs, small_cluster):
        config = TrainingConfig(
            num_iterations=4,
            num_stragglers=0,
            optimizer_factory=lambda: SGD(0.1),
            straggler_injector=FailStop({0: 1}),
            network=ZeroCommunication(),
            seed=0,
        )
        trace = NaiveBSPProtocol().run(model, partitioned_blobs, small_cluster, config)
        assert not trace.completed
        # The run aborts at the first stalled iteration.
        assert trace.num_iterations <= 2

    def test_coded_survives_fault(self, model, partitioned_blobs, small_cluster):
        config = TrainingConfig(
            num_iterations=4,
            num_stragglers=1,
            optimizer_factory=lambda: SGD(0.1),
            straggler_injector=FailStop({4: 0}),
            network=ZeroCommunication(),
            seed=0,
        )
        protocol = CodedBSPProtocol(scheme="heter_aware")
        trace = protocol.run(model, partitioned_blobs, small_cluster, config)
        assert trace.completed
        for record in trace.records:
            assert 4 not in record.workers_used

    def test_explicit_strategy_is_used(
        self, model, partitioned_blobs, small_cluster, config
    ):
        strategy = heterogeneity_aware_strategy(
            small_cluster.estimated_throughputs,
            num_partitions=10,
            num_stragglers=1,
            rng=3,
        )
        protocol = CodedBSPProtocol(scheme="custom", strategy=strategy)
        trace = protocol.run(model, partitioned_blobs, small_cluster, config)
        assert trace.metadata["loads"] == list(strategy.loads)

    def test_partition_mismatch_rejected(
        self, model, blob_dataset, small_cluster, config
    ):
        partitioned = partition_dataset(blob_dataset, 10, rng=0)
        strategy = heterogeneity_aware_strategy(
            small_cluster.estimated_throughputs,
            num_partitions=8,
            num_stragglers=1,
            rng=0,
        )
        protocol = CodedBSPProtocol(scheme="custom", strategy=strategy)
        with pytest.raises(ProtocolError):
            protocol.run(model, partitioned, small_cluster, config)

    def test_worker_count_mismatch_rejected(
        self, model, partitioned_blobs, heterogeneous_cluster, config
    ):
        strategy = heterogeneity_aware_strategy(
            [1, 2, 3], num_partitions=10, num_stragglers=1, rng=0
        )
        protocol = CodedBSPProtocol(scheme="custom", strategy=strategy)
        with pytest.raises(ProtocolError):
            protocol.run(model, partitioned_blobs, heterogeneous_cluster, config)

    def test_metadata_records_configuration(
        self, model, partitioned_blobs, small_cluster, config
    ):
        protocol = CodedBSPProtocol(scheme="group_based")
        trace = protocol.run(model, partitioned_blobs, small_cluster, config)
        assert trace.metadata["protocol"] == "coded_bsp"
        assert trace.metadata["num_partitions"] == 10
        assert trace.metadata["num_stragglers"] == 1
