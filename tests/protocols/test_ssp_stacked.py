"""Bit-identity of the stacked SSP/Async event scan against ``run``.

``SSPProtocol.run_stacked`` simulates many independent runs through one
chunked clock-recurrence scan plus a single cross-run lexsort; every run's
trace must stay JSON-identical to a standalone :meth:`SSPProtocol.run` at
the same seed — including adaptive (DynSSP) learning rates, stochastic
networks and full-cluster fail-stop stalls.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.clusters import build_cluster
from repro.learning.datasets import make_linear_regression
from repro.learning.models.linear import LinearRegressionModel
from repro.learning.partition import partition_dataset
from repro.protocols.base import ProtocolError, TrainingConfig
from repro.protocols.ssp import AsyncProtocol, SSPProtocol
from repro.simulation.network import LogNormalNetwork, SimpleNetwork
from repro.simulation.rng import RngStreams
from repro.simulation.stragglers import ArtificialDelay, FailStop, NoStragglers

SEEDS = [11, 12, 13, 14]


def make_run(seed, injector, network, num_iterations=40):
    dataset = make_linear_regression(num_samples=240, num_features=6, rng=7)
    cluster = build_cluster("Cluster-A", rng=seed)
    partitioned = partition_dataset(
        dataset, num_partitions=cluster.num_workers, rng=3
    )
    model = LinearRegressionModel(dataset.features.shape[1], rng=seed)
    config = TrainingConfig(
        num_iterations=num_iterations,
        seed=seed,
        straggler_injector=injector,
        network=network,
        rng_streams=RngStreams.from_seed(seed),
    )
    return model, partitioned, cluster, config


def trace_json(trace):
    # NaN-safe comparison (timing-free fields may be NaN; nan != nan).
    return json.dumps(trace.to_dict(), sort_keys=True)


def assert_stack_matches_solo(proto_factory, injector_factory, network_factory,
                              seeds=SEEDS, num_iterations=40):
    runs = [
        make_run(s, injector_factory(), network_factory(), num_iterations)
        for s in seeds
    ]
    stacked = proto_factory().run_stacked(
        [r[0] for r in runs],
        [r[1] for r in runs],
        [r[2] for r in runs],
        [r[3] for r in runs],
    )
    assert len(stacked) == len(seeds)
    for index, seed in enumerate(seeds):
        model, partitioned, cluster, config = make_run(
            seed, injector_factory(), network_factory(), num_iterations
        )
        solo = proto_factory().run(model, partitioned, cluster, config)
        assert trace_json(stacked[index]) == trace_json(solo)


class TestRunStackedBitIdentity:
    def test_ssp_with_artificial_delay(self):
        assert_stack_matches_solo(
            lambda: SSPProtocol(staleness=3),
            lambda: ArtificialDelay(num_stragglers=1, delay_seconds=0.5),
            SimpleNetwork,
        )

    def test_async_protocol(self):
        assert_stack_matches_solo(
            AsyncProtocol,
            lambda: ArtificialDelay(num_stragglers=1, delay_seconds=0.5),
            SimpleNetwork,
        )

    def test_dyn_ssp_adaptive_learning_rate(self):
        assert_stack_matches_solo(
            lambda: SSPProtocol(staleness=2, adaptive_learning_rate=True),
            NoStragglers,
            SimpleNetwork,
        )

    def test_stochastic_network_draws_stay_per_run(self):
        assert_stack_matches_solo(
            lambda: SSPProtocol(staleness=3),
            NoStragglers,
            LogNormalNetwork,
        )

    def test_full_cluster_fail_stop_stall(self):
        # Every worker dies mid-run: settled runs must stop drawing from
        # their streams exactly where the standalone scan stopped.
        assert_stack_matches_solo(
            lambda: SSPProtocol(staleness=1),
            lambda: FailStop(failures={w: 5 for w in range(8)}),
            SimpleNetwork,
            seeds=[21, 22, 23],
        )

    def test_mixed_horizon_settling(self):
        # Short stack: runs settle on different scan chunks.
        assert_stack_matches_solo(
            lambda: SSPProtocol(staleness=0),
            lambda: ArtificialDelay(num_stragglers=2, delay_seconds=2.0),
            SimpleNetwork,
            seeds=[5, 6],
            num_iterations=7,
        )


class TestRunStackedValidation:
    def test_rejects_mismatched_lengths(self):
        a = make_run(0, NoStragglers(), SimpleNetwork())
        with pytest.raises(ProtocolError, match="same length"):
            SSPProtocol(staleness=1).run_stacked(
                [a[0]], [a[1], a[1]], [a[2]], [a[3]]
            )

    def test_rejects_empty_stack(self):
        with pytest.raises(ProtocolError, match="at least one run"):
            SSPProtocol(staleness=1).run_stacked([], [], [], [])

    def test_rejects_missing_rng_streams(self):
        model, partitioned, cluster, config = make_run(
            0, NoStragglers(), SimpleNetwork()
        )
        legacy = TrainingConfig(
            num_iterations=4,
            seed=0,
            straggler_injector=NoStragglers(),
            network=SimpleNetwork(),
        )
        with pytest.raises(ProtocolError, match="RngStreams"):
            SSPProtocol(staleness=1).run_stacked(
                [model], [partitioned], [cluster], [legacy]
            )
