"""Unit tests for the SSP / asynchronous protocols."""

from __future__ import annotations

import numpy as np
import pytest

from repro.learning.models import SoftmaxClassifier
from repro.learning.optimizers import SGD
from repro.learning.partition import partition_dataset
from repro.protocols.base import ProtocolError, TrainingConfig
from repro.protocols.ssp import AsyncProtocol, SSPProtocol
from repro.simulation.network import ZeroCommunication
from repro.simulation.stragglers import FailStop, NoStragglers


@pytest.fixture
def config():
    return TrainingConfig(
        num_iterations=4,
        num_stragglers=0,
        optimizer_factory=lambda: SGD(learning_rate=0.05),
        straggler_injector=NoStragglers(),
        network=ZeroCommunication(),
        seed=0,
        loss_eval_samples=60,
    )


@pytest.fixture
def model(blob_dataset):
    return SoftmaxClassifier(blob_dataset.num_features, blob_dataset.num_classes, rng=0)


class TestSSPProtocol:
    def test_one_record_per_round(self, model, partitioned_blobs, small_cluster, config):
        trace = SSPProtocol(staleness=2).run(
            model, partitioned_blobs, small_cluster, config
        )
        assert trace.num_iterations == config.num_iterations
        assert trace.scheme == "ssp"

    def test_training_reduces_loss(self, model, partitioned_blobs, small_cluster, config):
        trace = SSPProtocol(staleness=2).run(
            model, partitioned_blobs, small_cluster, config
        )
        assert trace.losses[-1] < trace.losses[0]

    def test_durations_are_positive_and_finite(
        self, model, partitioned_blobs, small_cluster, config
    ):
        trace = SSPProtocol(staleness=2).run(
            model, partitioned_blobs, small_cluster, config
        )
        assert np.all(trace.durations > 0)
        assert trace.completed

    def test_small_staleness_slower_than_unbounded(
        self, blob_dataset, small_cluster, config
    ):
        """A tight staleness bound forces fast workers to wait on slow ones."""
        partitioned = partition_dataset(blob_dataset, small_cluster.num_workers, rng=0)

        def run(staleness):
            model = SoftmaxClassifier(
                blob_dataset.num_features, blob_dataset.num_classes, rng=0
            )
            return SSPProtocol(staleness=staleness).run(
                model, partitioned, small_cluster, config
            )

        tight = run(0)
        loose = run(float("inf"))
        assert tight.total_time >= loose.total_time

    def test_fail_stop_stalls_bounded_staleness(
        self, model, blob_dataset, small_cluster
    ):
        """With a failed worker and bounded staleness the run eventually stalls."""
        partitioned = partition_dataset(blob_dataset, small_cluster.num_workers, rng=0)
        config = TrainingConfig(
            num_iterations=50,
            num_stragglers=0,
            optimizer_factory=lambda: SGD(0.05),
            straggler_injector=FailStop({0: 0}),
            network=ZeroCommunication(),
            seed=0,
            loss_eval_samples=40,
        )
        trace = SSPProtocol(staleness=1).run(model, partitioned, small_cluster, config)
        assert not trace.completed

    def test_metadata(self, model, partitioned_blobs, small_cluster, config):
        trace = SSPProtocol(staleness=3).run(
            model, partitioned_blobs, small_cluster, config
        )
        assert trace.metadata["protocol"] == "ssp"
        assert trace.metadata["staleness"] == 3
        assert len(trace.metadata["shard_sizes"]) == small_cluster.num_workers

    def test_rejects_negative_staleness(self):
        with pytest.raises(ProtocolError):
            SSPProtocol(staleness=-1)

    def test_rejects_fewer_partitions_than_workers(
        self, model, blob_dataset, small_cluster, config
    ):
        partitioned = partition_dataset(blob_dataset, 3, rng=0)
        with pytest.raises(ProtocolError):
            SSPProtocol(staleness=1).run(model, partitioned, small_cluster, config)


class TestDynSSP:
    def test_name_and_metadata(self, model, partitioned_blobs, small_cluster, config):
        protocol = SSPProtocol(staleness=2, adaptive_learning_rate=True)
        trace = protocol.run(model, partitioned_blobs, small_cluster, config)
        assert trace.scheme == "dyn_ssp"
        assert trace.metadata["adaptive_learning_rate"] is True

    def test_training_still_reduces_loss(
        self, model, partitioned_blobs, small_cluster, config
    ):
        protocol = SSPProtocol(staleness=2, adaptive_learning_rate=True)
        trace = protocol.run(model, partitioned_blobs, small_cluster, config)
        assert trace.losses[-1] < trace.losses[0]

    def test_mini_batch_option(self, model, partitioned_blobs, small_cluster, config):
        protocol = SSPProtocol(staleness=2, batch_size=4)
        trace = protocol.run(model, partitioned_blobs, small_cluster, config)
        assert trace.metadata["batch_size"] == 4
        assert trace.completed

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ProtocolError):
            SSPProtocol(staleness=1, batch_size=0)


class TestAsyncProtocol:
    def test_name_and_run(self, model, partitioned_blobs, small_cluster, config):
        trace = AsyncProtocol().run(model, partitioned_blobs, small_cluster, config)
        assert trace.scheme == "async"
        assert trace.num_iterations == config.num_iterations

    def test_never_blocks_on_failed_worker(
        self, model, blob_dataset, small_cluster, config
    ):
        """Unbounded staleness keeps running even when one worker fails."""
        partitioned = partition_dataset(blob_dataset, small_cluster.num_workers, rng=0)
        failing_config = TrainingConfig(
            num_iterations=3,
            num_stragglers=0,
            optimizer_factory=lambda: SGD(0.05),
            straggler_injector=FailStop({0: 0}),
            network=ZeroCommunication(),
            seed=0,
            loss_eval_samples=40,
        )
        trace = AsyncProtocol().run(model, partitioned, small_cluster, failing_config)
        # The remaining workers keep pushing updates, so rounds still complete.
        assert trace.num_iterations >= 1
