"""Tests for the batched (``rng_version=2``) fig4 training path.

Covers the pieces PR 4 added around the protocols: threading
:class:`RngStreams` through ``TrainingConfig.make_rng``, the vectorized
loss evaluation, the in-place optimiser updates, and the batched
``CodedBSPProtocol`` inner loop (reused partition-gradient stacks, fused
encode+decode, columnar trace assembly, stall handling).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Engine, RunSpec, StragglerSpec
from repro.experiments.clusters import build_cluster
from repro.experiments.workloads import get_workload
from repro.learning.optimizers import SGD, Adam, MomentumSGD
from repro.learning.partition import partition_dataset
from repro.protocols.base import ProtocolError, TrainingConfig, evaluate_mean_loss
from repro.protocols.runner import run_scheme
from repro.simulation.rng import RngStreams
from repro.simulation.stragglers import FailStop, TransientSlowdown


def make_config(seed: int = 0, streams: bool = True, **overrides) -> TrainingConfig:
    defaults = dict(
        num_iterations=6,
        num_stragglers=1,
        optimizer_factory=lambda: SGD(learning_rate=0.5),
        straggler_injector=TransientSlowdown(probability=0.1, mean_delay_seconds=0.3),
        seed=seed,
        loss_eval_samples=128,
    )
    defaults.update(overrides)
    config = TrainingConfig(**defaults)
    if streams:
        config.rng_streams = RngStreams.from_seed(seed)
    return config


def run_training(scheme: str, config: TrainingConfig, seed: int = 0):
    preset = get_workload("blobs_softmax")
    cluster = build_cluster("Cluster-A", rng=seed)
    dataset = preset.make_dataset(512, seed=seed)
    return run_scheme(
        scheme,
        model_factory=lambda: preset.make_model(dataset, seed=seed),
        dataset=dataset,
        cluster=cluster,
        config=config,
    )


class TestMakeRngComponents:
    def test_component_returns_live_stream(self):
        config = make_config()
        first = config.make_rng(component="training")
        second = config.make_rng(component="training")
        assert first is second  # one continuing lineage, not fresh streams
        assert first is config.rng_streams.training

    def test_component_without_streams_falls_back_to_offsets(self):
        config = make_config(streams=False)
        a = config.make_rng(component="training").normal(size=4)
        b = config.make_rng().normal(size=4)
        assert np.allclose(a, b)

    def test_unknown_component_rejected(self):
        with pytest.raises(ProtocolError, match="rng component"):
            make_config().make_rng(component="entropy")

    def test_streams_are_mutually_independent(self):
        config = make_config()
        injector = config.make_rng(component="injector").normal(size=8)
        jitter = config.make_rng(component="jitter").normal(size=8)
        assert not np.allclose(injector, jitter)


class TestEvaluateMeanLoss:
    def historical_mean_loss(self, model, partitioned, max_samples, rng):
        """The pre-PR4 implementation, verbatim (concatenate per call)."""
        dataset = partitioned.dataset
        used = partitioned.samples_used
        indices = np.concatenate([p.sample_indices for p in partitioned.partitions])
        if max_samples and used > max_samples:
            generator = rng or np.random.default_rng(0)
            indices = generator.choice(indices, size=max_samples, replace=False)
        features = dataset.features[indices]
        labels = dataset.labels[indices]
        return model.loss(features, labels) / len(indices)

    @pytest.mark.parametrize("max_samples", [0, 64, 10_000])
    def test_bit_identical_to_historical_implementation(self, max_samples):
        preset = get_workload("blobs_softmax")
        dataset = preset.make_dataset(256, seed=0)
        partitioned = partition_dataset(dataset, num_partitions=8, rng=0)
        model = preset.make_model(dataset, seed=0)
        current = evaluate_mean_loss(
            model, partitioned, max_samples, np.random.default_rng(7)
        )
        historical = self.historical_mean_loss(
            model, partitioned, max_samples, np.random.default_rng(7)
        )
        assert current == historical  # exact: same values, same RNG stream

    def test_evaluation_data_cached(self):
        dataset = get_workload("blobs_softmax").make_dataset(128, seed=0)
        partitioned = partition_dataset(dataset, num_partitions=4, rng=0)
        first = partitioned.evaluation_data()
        assert partitioned.evaluation_data()[0] is first[0]
        assert not first[0].flags.writeable


class TestStepInplace:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: SGD(learning_rate=0.3),
            lambda: MomentumSGD(learning_rate=0.3, momentum=0.8),
            lambda: MomentumSGD(learning_rate=0.3, momentum=0.8, nesterov=True),
            lambda: Adam(learning_rate=0.01),
        ],
    )
    def test_matches_out_of_place_step(self, factory):
        rng = np.random.default_rng(0)
        reference, inplace = factory(), factory()
        params_ref = rng.normal(size=32)
        params_in = params_ref.copy()
        for _ in range(5):
            gradient = rng.normal(size=32)
            params_ref = reference.step(params_ref, gradient)
            returned = inplace.step_inplace(params_in, gradient)
            assert returned is params_in  # updated in place, no new buffer
            np.testing.assert_allclose(params_in, params_ref, rtol=1e-12)
        assert inplace.steps_taken == reference.steps_taken == 5

    def test_falls_back_for_non_float64_buffers(self):
        optimizer = SGD(learning_rate=0.5)
        params = [1.0, 2.0]
        updated = optimizer.step_inplace(params, np.array([1.0, 1.0]))
        assert isinstance(updated, np.ndarray)
        np.testing.assert_allclose(updated, [0.5, 1.5])


class TestBatchedCodedProtocol:
    @pytest.mark.parametrize("scheme", ["naive", "cyclic", "heter_aware", "group_based"])
    def test_learning_outcome_matches_per_iteration_path(self, scheme):
        """The decoded gradient equals the full-batch gradient on both
        paths, so at matched seeds the loss trajectories must agree."""
        batched = run_training(scheme, make_config(streams=True))
        legacy = run_training(scheme, make_config(streams=False))
        assert batched.num_iterations == legacy.num_iterations
        # The batched path records the exact full-batch loss; the legacy
        # path a 128-sample estimate of it.
        np.testing.assert_allclose(
            batched.losses, legacy.losses, rtol=0.15, atol=0.02
        )
        assert batched.metadata["rng_version"] == 2
        assert "rng_version" not in legacy.metadata

    def test_batched_trace_is_columnar(self):
        trace = run_training("heter_aware", make_config(streams=True))
        assert trace._records_cache is None  # assembled via from_arrays
        assert trace.columns().num_iterations == trace.num_iterations
        assert np.all(np.isfinite(trace.losses))

    def test_recorded_loss_is_exact_full_batch_loss(self):
        preset = get_workload("blobs_softmax")
        cluster = build_cluster("Cluster-A", rng=0)
        dataset = preset.make_dataset(512, seed=0)
        config = make_config(streams=True, num_iterations=1)
        model = preset.make_model(dataset, seed=0)
        fresh = preset.make_model(dataset, seed=0)
        trace = run_scheme(
            "cyclic",
            model_factory=lambda: model,
            dataset=dataset,
            cluster=cluster,
            config=config,
        )
        partitioned = partition_dataset(
            dataset, config.resolve_partitions(cluster.num_workers, "cyclic"),
            rng=config.seed,
        )
        expected = evaluate_mean_loss(fresh, partitioned)
        assert trace.losses[0] == pytest.approx(expected, rel=1e-9)

    def test_stall_truncates_the_batched_trace(self):
        config = make_config(
            streams=True,
            num_iterations=8,
            straggler_injector=FailStop({0: 3, 1: 3, 2: 3, 3: 3}),
            num_stragglers=1,
        )
        trace = run_training("cyclic", config)
        assert trace.num_iterations == 4  # iterations 0-2 decode, 3 stalls
        assert not np.isfinite(trace.durations[-1])
        assert trace.records[-1].workers_used == ()
        assert np.isfinite(trace.losses[-1])  # stall row still records a loss

    def test_record_loss_every_carries_last_loss(self):
        config = make_config(streams=True, num_iterations=6, record_loss_every=3)
        trace = run_training("heter_aware", config)
        losses = trace.losses
        assert losses[0] == losses[1] == losses[2]
        assert losses[3] == losses[4] == losses[5]
        assert losses[0] != losses[3]

    def test_rng_version2_is_reproducible_through_the_engine(self):
        spec = RunSpec(
            mode="training",
            scheme="heter_aware",
            cluster="Cluster-A",
            num_iterations=4,
            total_samples=256,
            seed=11,
            rng_version=2,
            straggler=StragglerSpec(
                "transient", {"probability": 0.1, "mean_delay_seconds": 0.3}
            ),
        )
        a = Engine().run(spec)
        b = Engine().run(spec)
        np.testing.assert_array_equal(a.trace.durations, b.trace.durations)
        np.testing.assert_array_equal(a.trace.losses, b.trace.losses)

    def test_ssp_still_runs_under_rng_version2(self):
        result = Engine().run(
            RunSpec(
                mode="training",
                scheme="ssp",
                cluster="Cluster-A",
                num_iterations=3,
                total_samples=256,
                seed=2,
                rng_version=2,
            )
        )
        assert result.trace.num_iterations >= 1
        assert np.isfinite(result.final_loss)
