"""Unit tests for the high-level protocol runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.learning.models import SoftmaxClassifier
from repro.learning.optimizers import SGD
from repro.protocols.base import ProtocolError, TrainingConfig
from repro.protocols.runner import (
    PROTOCOL_NAMES,
    compare_schemes,
    make_protocol,
    run_scheme,
)
from repro.simulation.network import ZeroCommunication
from repro.simulation.stragglers import NoStragglers


@pytest.fixture
def config():
    return TrainingConfig(
        num_iterations=3,
        num_stragglers=1,
        optimizer_factory=lambda: SGD(learning_rate=0.1),
        straggler_injector=NoStragglers(),
        network=ZeroCommunication(),
        seed=0,
        loss_eval_samples=60,
    )


def model_factory_for(dataset):
    return lambda: SoftmaxClassifier(dataset.num_features, dataset.num_classes, rng=0)


class TestMakeProtocol:
    def test_all_names_constructible(self):
        for name in PROTOCOL_NAMES:
            protocol = make_protocol(name)
            assert protocol.name in (name, "ssp", "async")

    def test_unknown_name(self):
        with pytest.raises(ProtocolError):
            make_protocol("bogus")

    def test_ssp_staleness_forwarded(self):
        protocol = make_protocol("ssp", ssp_staleness=7)
        assert protocol.staleness == 7

    def test_dyn_ssp_variant(self):
        protocol = make_protocol("dyn_ssp", ssp_staleness=2, ssp_batch_size=8)
        assert protocol.name == "dyn_ssp"
        assert protocol.adaptive_learning_rate
        assert protocol.batch_size == 8


class TestRunScheme:
    def test_partitions_follow_scheme_convention(
        self, blob_dataset, small_cluster, config
    ):
        naive_trace = run_scheme(
            "naive", model_factory_for(blob_dataset), blob_dataset, small_cluster, config
        )
        heter_trace = run_scheme(
            "heter_aware",
            model_factory_for(blob_dataset),
            blob_dataset,
            small_cluster,
            config,
        )
        assert naive_trace.metadata["num_partitions"] == small_cluster.num_workers
        assert (
            heter_trace.metadata["num_partitions"]
            == config.partitions_multiplier * small_cluster.num_workers
        )

    def test_explicit_partition_override(self, blob_dataset, small_cluster):
        config = TrainingConfig(
            num_iterations=2,
            num_stragglers=1,
            num_partitions=20,
            optimizer_factory=lambda: SGD(0.1),
            network=ZeroCommunication(),
            seed=0,
        )
        trace = run_scheme(
            "heter_aware",
            model_factory_for(blob_dataset),
            blob_dataset,
            small_cluster,
            config,
        )
        assert trace.metadata["num_partitions"] == 20


class TestCompareSchemes:
    def test_returns_one_trace_per_scheme(self, blob_dataset, small_cluster, config):
        traces = compare_schemes(
            ["naive", "cyclic", "heter_aware", "group_based"],
            model_factory_for(blob_dataset),
            blob_dataset,
            small_cluster,
            config,
        )
        assert set(traces.keys()) == {"naive", "cyclic", "heter_aware", "group_based"}
        for trace in traces.values():
            assert trace.num_iterations == config.num_iterations

    def test_heter_aware_faster_than_naive_on_heterogeneous_cluster(
        self, blob_dataset, small_cluster, config
    ):
        traces = compare_schemes(
            ["naive", "heter_aware"],
            model_factory_for(blob_dataset),
            blob_dataset,
            small_cluster,
            config,
        )
        assert (
            traces["heter_aware"].mean_iteration_time()
            < traces["naive"].mean_iteration_time()
        )

    def test_final_losses_finite(self, blob_dataset, small_cluster, config):
        traces = compare_schemes(
            ["heter_aware", "ssp"],
            model_factory_for(blob_dataset),
            blob_dataset,
            small_cluster,
            config,
        )
        for trace in traces.values():
            assert np.isfinite(trace.losses[-1])
