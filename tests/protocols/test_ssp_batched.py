"""Tests for the batched (rng_version=2) SSP/Async event engine.

The batched path replaces the per-event heap loop with a numpy scan over
per-worker clocks plus a block-batched gradient replay.  Its contract
mirrors PR 3's v1/v2 timing contract:

* with **deterministic** timing (no jitter, no random delays, deterministic
  network) the schedule is a pure function of the duration matrix, so the
  batched path must reproduce the heap loop **exactly** — durations, losses
  and final parameters, stalls included;
* feeding both paths the *same* pre-drawn duration matrix (via a
  deterministic matrix injector) must agree exactly for arbitrary random
  matrices — the schedule scan is property-tested against the heap;
* with stochastic draws the paths consume different stream layouts and are
  only statistically equivalent at matched seeds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Engine, RunSpec, StragglerSpec
from repro.learning.datasets import make_blobs
from repro.learning.models import MLPClassifier, SoftmaxClassifier
from repro.learning.optimizers import SGD
from repro.learning.partition import partition_dataset
from repro.protocols.base import TrainingConfig
from repro.protocols.ssp import AsyncProtocol, SSPProtocol
from repro.simulation.cluster import cluster_from_vcpu_counts, uniform_cluster
from repro.simulation.network import LogNormalNetwork, ZeroCommunication
from repro.simulation.rng import RngStreams
from repro.simulation.stragglers import FailStop, StragglerInjector


class MatrixDelays(StragglerInjector):
    """Deterministic injector: iteration ``c``'s delays are a fixed matrix row.

    Lets both execution paths consume the *identical* pre-drawn durations,
    isolating the schedule semantics from RNG stream layouts.
    """

    def __init__(self, matrix: np.ndarray) -> None:
        self.matrix = np.asarray(matrix, dtype=np.float64)

    def delays(self, iteration, num_workers, rng):
        if iteration >= self.matrix.shape[0]:
            return np.zeros(num_workers)
        return self.matrix[iteration].copy()

    def delays_batch(self, start_iteration, num_iterations, num_workers, rng):
        out = np.zeros((num_iterations, num_workers))
        for step in range(num_iterations):
            out[step] = self.delays(start_iteration + step, num_workers, rng)
        return out

    def describe(self):
        return "MatrixDelays"


@pytest.fixture
def dataset():
    return make_blobs(num_samples=64, num_features=4, num_classes=3, rng=0)


def deterministic_cluster():
    return cluster_from_vcpu_counts("det", {2: 2, 4: 2}, compute_noise=0.0, rng=0)


def make_config(streams, injector=None, iters=6, **kwargs):
    extra = {"straggler_injector": injector} if injector is not None else {}
    extra.update(kwargs)
    return TrainingConfig(
        num_iterations=iters,
        num_stragglers=0,
        optimizer_factory=lambda: SGD(0.05),
        network=extra.pop("network", ZeroCommunication()),
        seed=0,
        loss_eval_samples=0,
        rng_streams=streams,
        **extra,
    )


def run_pair(protocol_factory, dataset, cluster, partitioned, config_kwargs):
    """Run the heap loop (v1 config) and the batched path (v2 config) on
    identically seeded fresh models; return (trace_v1, trace_v2, m1, m2)."""
    m1 = SoftmaxClassifier(dataset.num_features, dataset.num_classes, rng=0)
    m2 = SoftmaxClassifier(dataset.num_features, dataset.num_classes, rng=0)
    t1 = protocol_factory().run(
        m1, partitioned, cluster, make_config(None, **config_kwargs)
    )
    t2 = protocol_factory().run(
        m2, partitioned, cluster, make_config(RngStreams.from_seed(0), **config_kwargs)
    )
    return t1, t2, m1, m2


def assert_exactly_equal(t1, t2, m1=None, m2=None):
    assert np.array_equal(t1.durations, t2.durations)
    assert np.array_equal(t1.losses, t2.losses, equal_nan=True)
    assert t1.num_iterations == t2.num_iterations
    if m1 is not None:
        assert np.array_equal(m1.parameters(), m2.parameters())


class TestDeterministicExactEquality:
    """No randomness in timing => heap loop and batched scan agree exactly."""

    @pytest.mark.parametrize("staleness", [0, 1, 3, float("inf")])
    def test_all_staleness_bounds(self, dataset, staleness):
        cluster = deterministic_cluster()
        partitioned = partition_dataset(dataset, cluster.num_workers, rng=0)
        t1, t2, m1, m2 = run_pair(
            lambda: SSPProtocol(staleness=staleness),
            dataset, cluster, partitioned, {},
        )
        assert_exactly_equal(t1, t2, m1, m2)

    def test_dyn_ssp_staleness_damping(self, dataset):
        cluster = deterministic_cluster()
        partitioned = partition_dataset(dataset, cluster.num_workers, rng=0)
        t1, t2, m1, m2 = run_pair(
            lambda: SSPProtocol(staleness=2, adaptive_learning_rate=True),
            dataset, cluster, partitioned, {"iters": 10},
        )
        assert_exactly_equal(t1, t2, m1, m2)

    def test_uneven_shards_mix_batch_shapes(self, dataset):
        """k not divisible by m gives mixed shard sizes: the block-batched
        gradient replay must group shapes correctly."""
        cluster = deterministic_cluster()
        partitioned = partition_dataset(dataset, cluster.num_workers + 2, rng=0)
        t1, t2, m1, m2 = run_pair(
            lambda: SSPProtocol(staleness=2),
            dataset, cluster, partitioned, {},
        )
        assert_exactly_equal(t1, t2, m1, m2)

    @pytest.mark.parametrize("staleness", [0, 1, 2])
    def test_fail_stop_stalls_identically(self, dataset, staleness):
        cluster = deterministic_cluster()
        partitioned = partition_dataset(dataset, cluster.num_workers, rng=0)
        t1, t2, m1, m2 = run_pair(
            lambda: SSPProtocol(staleness=staleness),
            dataset, cluster, partitioned,
            {"injector": FailStop({0: 2}), "iters": 12},
        )
        assert not t1.completed and not t2.completed
        assert np.isinf(t1.durations[-1]) and np.isinf(t2.durations[-1])
        assert t2.records[-1].workers_used == ()
        assert_exactly_equal(t1, t2, m1, m2)

    def test_async_survives_failed_worker(self, dataset):
        cluster = deterministic_cluster()
        partitioned = partition_dataset(dataset, cluster.num_workers, rng=0)
        t1, t2, m1, m2 = run_pair(
            lambda: AsyncProtocol(),
            dataset, cluster, partitioned,
            {"injector": FailStop({0: 0}), "iters": 5},
        )
        assert t1.completed and t2.completed
        assert_exactly_equal(t1, t2, m1, m2)

    def test_every_worker_failed_stalls_with_one_record(self, dataset):
        cluster = deterministic_cluster()
        partitioned = partition_dataset(dataset, cluster.num_workers, rng=0)
        failures = {w: 0 for w in range(cluster.num_workers)}
        t1, t2, m1, m2 = run_pair(
            lambda: SSPProtocol(staleness=1),
            dataset, cluster, partitioned,
            {"injector": FailStop(failures), "iters": 3},
        )
        assert t1.num_iterations == t2.num_iterations == 1
        assert np.isinf(t2.durations[0])
        assert_exactly_equal(t1, t2, m1, m2)


class TestScheduleProperty:
    """Random duration matrices through the heap and through the scan."""

    @pytest.mark.parametrize("seed", range(12))
    def test_same_duration_matrix_same_run(self, dataset, seed):
        rng = np.random.default_rng(seed)
        num_workers = int(rng.integers(2, 7))
        cluster = uniform_cluster(
            "u", num_workers, samples_per_second=1e9, compute_noise=0.0
        )
        partitioned = partition_dataset(dataset, num_workers, rng=0)
        iters = int(rng.integers(2, 9))
        staleness = float(rng.choice([0, 1, 2, 3, np.inf]))
        matrix = rng.uniform(0.1, 2.0, size=(iters * num_workers + 8, num_workers))
        if seed % 3 == 0:
            matrix[rng.random(matrix.shape) < 0.05] = np.inf
        t1, t2, m1, m2 = run_pair(
            lambda: SSPProtocol(staleness=staleness),
            dataset, cluster, partitioned,
            {"injector": MatrixDelays(matrix), "iters": iters},
        )
        assert_exactly_equal(t1, t2, m1, m2)


class TestLockstepAndDegenerateClusters:
    def test_staleness_zero_is_bsp_lockstep(self, dataset):
        """s=0: every round is a synchronisation barrier, so each round's
        duration equals the slowest worker's step duration that round."""
        num_workers = 4
        cluster = uniform_cluster(
            "u", num_workers, samples_per_second=1e9, compute_noise=0.0
        )
        partitioned = partition_dataset(dataset, num_workers, rng=0)
        iters = 5
        matrix = np.random.default_rng(3).uniform(0.2, 1.5, size=(iters, num_workers))
        model = SoftmaxClassifier(dataset.num_features, dataset.num_classes, rng=0)
        trace = SSPProtocol(staleness=0).run(
            model, partitioned, cluster,
            make_config(RngStreams.from_seed(0), injector=MatrixDelays(matrix),
                        iters=iters),
        )
        # compute time is ~0 (1e9 samples/s), comm is 0: durations are the
        # per-round maxima of the injected delays, like naive BSP.
        assert np.allclose(trace.durations, matrix.max(axis=1), atol=1e-6)

    def test_single_worker_cluster(self, dataset):
        cluster = uniform_cluster("single", 1, compute_noise=0.0)
        partitioned = partition_dataset(dataset, 1, rng=0)
        for staleness in (0, 3, float("inf")):
            t1, t2, m1, m2 = run_pair(
                lambda s=staleness: SSPProtocol(staleness=s),
                dataset, cluster, partitioned, {"iters": 6},
            )
            assert t1.num_iterations == t2.num_iterations == 6
            assert_exactly_equal(t1, t2, m1, m2)


class TestStatisticalEquivalence:
    """Random timing: different streams, matched-seed populations agree."""

    @pytest.mark.parametrize("scheme", ["ssp", "dyn_ssp", "async"])
    def test_mean_duration_and_loss_populations(self, scheme):
        engine = Engine()
        base = RunSpec(
            mode="training", scheme=scheme, cluster="Cluster-A",
            num_iterations=8, total_samples=256, ssp_staleness=3,
            ssp_batch_size=8, loss_eval_samples=64,
            straggler=StragglerSpec(
                "transient", {"probability": 0.05, "mean_delay_seconds": 0.5}
            ),
        )
        d1, d2, l1, l2 = [], [], [], []
        for seed in range(6):
            r1 = engine.run(base.replace(seed=seed, rng_version=1))
            r2 = engine.run(base.replace(seed=seed, rng_version=2))
            assert r2.trace.metadata["rng_version"] == 2
            assert "rng_version" not in r1.trace.metadata
            d1.append(r1.trace.mean_iteration_time())
            d2.append(r2.trace.mean_iteration_time())
            l1.append(r1.final_loss)
            l2.append(r2.final_loss)
        mean1, mean2 = np.mean(d1), np.mean(d2)
        assert abs(mean1 - mean2) <= 0.25 * max(mean1, mean2)
        loss1, loss2 = np.mean(l1), np.mean(l2)
        assert abs(loss1 - loss2) <= 0.25 * max(abs(loss1), abs(loss2))

    def test_batched_trace_is_columnar(self):
        engine = Engine()
        result = engine.run(RunSpec(
            mode="training", scheme="ssp", cluster="Cluster-A",
            num_iterations=5, total_samples=256, seed=0, rng_version=2,
        ))
        trace = result.trace
        assert trace.num_iterations == 5
        assert trace._records_cache is None  # built via from_arrays, lazily

    def test_batched_run_is_deterministic(self):
        engine = Engine()
        spec = RunSpec(
            mode="training", scheme="ssp", cluster="Cluster-B",
            num_iterations=5, total_samples=256, seed=7, rng_version=2,
            ssp_batch_size=4,
            straggler=StragglerSpec(
                "transient", {"probability": 0.1, "mean_delay_seconds": 0.5}
            ),
        )
        first = engine.run(spec).trace
        second = engine.run(spec).trace
        assert np.array_equal(first.durations, second.durations)
        assert np.array_equal(first.losses, second.losses)


class TestStochasticNetworkStream:
    """SSP under a stochastic network consumes the v2 ``network`` stream in
    the batched path exactly like the per-event path does."""

    def network_config(self, streams):
        return make_config(
            streams,
            network=LogNormalNetwork(
                latency_seconds=0.05, latency_sigma=0.5, bandwidth_sigma=0.2
            ),
            iters=5,
        )

    def test_batched_path_consumes_the_network_stream(self, dataset):
        cluster = deterministic_cluster()
        partitioned = partition_dataset(dataset, cluster.num_workers, rng=0)
        streams = RngStreams.from_seed(0)
        model = SoftmaxClassifier(dataset.num_features, dataset.num_classes, rng=0)
        SSPProtocol(staleness=3).run(
            model, partitioned, cluster, self.network_config(streams)
        )
        fresh = RngStreams.from_seed(0)
        # network stream advanced...
        assert (
            streams.network.bit_generator.state
            != fresh.network.bit_generator.state
        )
        # ...and the injector/jitter streams consumed exactly what a
        # deterministic-network run consumes (the network draws are separate).
        deterministic = RngStreams.from_seed(0)
        model2 = SoftmaxClassifier(dataset.num_features, dataset.num_classes, rng=0)
        SSPProtocol(staleness=3).run(
            model2, partitioned, cluster,
            make_config(deterministic, iters=5),
        )
        assert (
            streams.injector.bit_generator.state
            == deterministic.injector.bit_generator.state
        )
        assert (
            streams.jitter.bit_generator.state
            == deterministic.jitter.bit_generator.state
        )

    def test_deterministic_network_leaves_network_stream_untouched(self, dataset):
        cluster = deterministic_cluster()
        partitioned = partition_dataset(dataset, cluster.num_workers, rng=0)
        streams = RngStreams.from_seed(0)
        model = SoftmaxClassifier(dataset.num_features, dataset.num_classes, rng=0)
        SSPProtocol(staleness=3).run(
            model, partitioned, cluster, make_config(streams, iters=5)
        )
        fresh = RngStreams.from_seed(0)
        assert (
            streams.network.bit_generator.state
            == fresh.network.bit_generator.state
        )

    def test_per_event_and_batched_populations_agree(self, dataset):
        """Same network model through both paths: total-time populations at
        matched seeds agree loosely (different stream layouts)."""
        cluster = deterministic_cluster()
        partitioned = partition_dataset(dataset, cluster.num_workers, rng=0)
        totals_event, totals_batched = [], []
        for seed in range(6):
            protocol = SSPProtocol(staleness=3)
            model = SoftmaxClassifier(
                dataset.num_features, dataset.num_classes, rng=0
            )
            trace = protocol.run_per_event(
                model, partitioned, cluster,
                self.network_config(RngStreams.from_seed(seed)),
            )
            totals_event.append(trace.total_time)
            model = SoftmaxClassifier(
                dataset.num_features, dataset.num_classes, rng=0
            )
            trace = protocol.run(
                model, partitioned, cluster,
                self.network_config(RngStreams.from_seed(seed)),
            )
            assert trace.metadata["rng_version"] == 2
            totals_batched.append(trace.total_time)
        mean_event = np.mean(totals_event)
        mean_batched = np.mean(totals_batched)
        assert abs(mean_event - mean_batched) <= 0.3 * max(mean_event, mean_batched)

    def test_v1_config_with_stochastic_network_still_raises(self, dataset):
        from repro.protocols.base import ProtocolError

        cluster = deterministic_cluster()
        partitioned = partition_dataset(dataset, cluster.num_workers, rng=0)
        model = SoftmaxClassifier(dataset.num_features, dataset.num_classes, rng=0)
        with pytest.raises(ProtocolError, match="rng_version=2"):
            SSPProtocol(staleness=3).run(
                model, partitioned, cluster, self.network_config(None)
            )


class TestReplayDispatchEquivalence:
    """The two replay arms — version-grouped shared-parameter kernels vs
    per-pair parameter cubes — are bit-identical; the
    ``_GROUPED_PARAM_BYTES_MIN`` cutoff only picks the faster one."""

    def run_with_cutoff(self, monkeypatch, model_factory, cutoff):
        from repro.learning.datasets import make_blobs as _make_blobs

        monkeypatch.setattr(SSPProtocol, "_GROUPED_PARAM_BYTES_MIN", cutoff)
        data = _make_blobs(num_samples=96, num_features=6, num_classes=3, rng=1)
        cluster = deterministic_cluster()
        partitioned = partition_dataset(data, cluster.num_workers, rng=0)
        model = model_factory(data)
        trace = SSPProtocol(staleness=2).run(
            model,
            partitioned,
            cluster,
            make_config(RngStreams.from_seed(0), iters=8),
        )
        return trace, model

    @pytest.mark.parametrize(
        "model_factory",
        [
            pytest.param(
                lambda d: SoftmaxClassifier(d.num_features, d.num_classes, rng=0),
                id="softmax",
            ),
            pytest.param(
                lambda d: MLPClassifier(
                    d.num_features, d.num_classes, hidden_sizes=(16, 8), rng=0
                ),
                id="mlp",
            ),
        ],
    )
    def test_grouped_and_cube_replay_agree(self, monkeypatch, model_factory):
        grouped_trace, grouped_model = self.run_with_cutoff(
            monkeypatch, model_factory, 0
        )
        cube_trace, cube_model = self.run_with_cutoff(
            monkeypatch, model_factory, 1 << 60
        )
        assert_exactly_equal(grouped_trace, cube_trace, grouped_model, cube_model)
