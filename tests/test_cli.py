"""Tests for the command-line interface (python -m repro ...)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["table2"],
            ["fig2", "--stragglers", "2"],
            ["fig3", "--clusters", "Cluster-B"],
            ["fig4", "--iterations", "3"],
            ["fig5"],
            ["optimality", "--trials", "2"],
            ["estimation-error", "--errors", "0", "0.3"],
            ["analyze", "--cluster", "Cluster-A"],
            ["run", "--scheme", "heter_aware", "--iterations", "3"],
            ["plugins"],
            ["serve", "--port", "0"],
            ["serve", "--host", "0.0.0.0", "--store", "/tmp/store"],
        ):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_unknown_command_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["fig9"])


class TestCommands:
    """Run each sub-command at a tiny scale and check its report output."""

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Cluster-D" in out

    def test_fig2(self, capsys):
        code = main(
            ["fig2", "--stragglers", "1", "--iterations", "3", "--samples", "512"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out
        assert "heter_aware" in out

    def test_fig3(self, capsys):
        code = main(
            [
                "fig3",
                "--clusters",
                "Cluster-A",
                "--iterations",
                "3",
                "--samples",
                "512",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out
        assert "Cluster-A" in out

    def test_fig4(self, capsys):
        code = main(
            [
                "fig4",
                "--cluster",
                "Cluster-A",
                "--workload",
                "blobs_softmax",
                "--samples",
                "256",
                "--iterations",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out
        assert "ranking" in out

    def test_fig5(self, capsys):
        code = main(["fig5", "--iterations", "3", "--samples", "512"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 5" in out
        assert "resource usage" in out

    def test_optimality(self, capsys):
        code = main(["optimality", "--trials", "2", "--workers", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Theorem 5" in out

    def test_estimation_error(self, capsys):
        code = main(
            ["estimation-error", "--errors", "0", "0.3", "--iterations", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ablation" in out

    def test_analyze(self, capsys):
        code = main(["analyze", "--cluster", "Cluster-A", "--stragglers", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Static strategy analysis" in out
        assert "group_based" in out

    def test_run_summary(self, capsys):
        code = main(
            ["run", "--scheme", "heter_aware", "--iterations", "3",
             "--samples", "512", "--delay", "1.5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mean_iteration_time" in out
        assert "heter_aware" in out

    def test_run_json_round_trips(self, capsys):
        import json

        from repro.api import RunResult

        code = main(
            ["run", "--scheme", "naive", "--iterations", "2", "--samples", "256",
             "--stragglers", "0", "--json"]
        )
        assert code == 0
        out = capsys.readouterr().out
        result = RunResult.from_json(out)
        assert result.spec.scheme == "naive"
        assert result.metrics["num_iterations"] == 2
        # The payload carries the spec's content address (from_json ignores
        # the extra key), so pipelines can key artifacts off the output.
        payload = json.loads(out)
        assert payload["fingerprint"] == result.spec.fingerprint()

    def test_run_store_resumes(self, capsys, tmp_path):
        argv = [
            "run", "--scheme", "naive", "--iterations", "2", "--samples", "256",
            "--seed", "3", "--json", "--store", str(tmp_path / "store"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second

        from repro.store import FileRunStore

        assert FileRunStore(tmp_path / "store").stats()["entries"] == 1

    def test_run_from_spec_file(self, capsys, tmp_path):
        from repro.api import RunSpec

        spec = RunSpec(scheme="cyclic", num_iterations=2, total_samples=256, seed=1)
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        code = main(["run", "--spec", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "cyclic" in out

    def test_plugins(self, capsys):
        code = main(["plugins"])
        assert code == 0
        out = capsys.readouterr().out
        for expected in ("schemes", "heter_aware", "Cluster-D", "timing, training"):
            assert expected in out
