"""Unit tests for the metrics layer (resource usage, timing, convergence, report)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import (
    align_curves,
    area_under_loss_curve,
    format_mapping,
    format_table,
    iteration_resource_usage,
    loss_at_time,
    run_resource_usage,
    speedup,
    speedup_table,
    time_to_loss,
    timing_stats,
    to_csv,
)
from repro.simulation.trace import IterationRecord, RunTrace


def record(iteration, duration, loss=1.0, compute=(0.5, 1.0)):
    return IterationRecord(
        iteration=iteration,
        duration=duration,
        train_loss=loss,
        compute_times=tuple(compute),
        completion_times=tuple(c + 0.1 for c in compute),
        workers_used=(0, 1),
    )


def make_trace(durations, losses=None, scheme="x"):
    losses = losses or [1.0] * len(durations)
    trace = RunTrace(scheme=scheme, cluster_name="c")
    for i, (duration, loss) in enumerate(zip(durations, losses)):
        trace.append(record(i, duration, loss))
    return trace


class TestResourceUsage:
    def test_full_utilisation(self):
        rec = record(0, duration=1.0, compute=(1.0, 1.0))
        assert iteration_resource_usage(rec) == pytest.approx(1.0)

    def test_half_utilisation(self):
        rec = record(0, duration=2.0, compute=(2.0, 2.0, 0.0, 0.0))
        assert iteration_resource_usage(rec) == pytest.approx(0.5)

    def test_compute_capped_at_duration(self):
        # A straggler computing long past the iteration end contributes at
        # most the iteration duration.
        rec = record(0, duration=1.0, compute=(5.0, 1.0))
        assert iteration_resource_usage(rec) == pytest.approx(1.0)

    def test_stalled_iteration_counts_zero(self):
        rec = record(0, duration=float("inf"), compute=(1.0, 1.0))
        assert iteration_resource_usage(rec) == 0.0

    def test_run_average(self):
        trace = make_trace([1.0, 1.0])
        usage = run_resource_usage(trace)
        assert 0.0 < usage <= 1.0

    def test_empty_trace_nan(self):
        assert np.isnan(run_resource_usage(RunTrace(scheme="x", cluster_name="c")))


class TestTimingStats:
    def test_basic_statistics(self):
        trace = make_trace([1.0, 2.0, 3.0, 4.0])
        stats = timing_stats(trace)
        assert stats.mean == pytest.approx(2.5)
        assert stats.median == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.num_iterations == 4
        assert stats.stalled_iterations == 0

    def test_stalled_iterations_counted(self):
        trace = make_trace([1.0, float("inf"), 2.0])
        stats = timing_stats(trace)
        assert stats.stalled_iterations == 1
        assert stats.mean == pytest.approx(1.5)

    def test_all_stalled(self):
        trace = make_trace([float("inf")])
        stats = timing_stats(trace)
        assert stats.mean == float("inf")

    def test_speedup(self):
        slow = make_trace([4.0, 4.0], scheme="cyclic")
        fast = make_trace([1.0, 1.0], scheme="heter")
        assert speedup(slow, fast) == pytest.approx(4.0)
        assert speedup(fast, slow) == pytest.approx(0.25)

    def test_speedup_table(self):
        traces = {
            "cyclic": make_trace([4.0]),
            "heter_aware": make_trace([2.0]),
            "group_based": make_trace([1.0]),
        }
        table = speedup_table(traces, baseline="cyclic")
        assert table["cyclic"] == pytest.approx(1.0)
        assert table["heter_aware"] == pytest.approx(2.0)
        assert table["group_based"] == pytest.approx(4.0)

    def test_speedup_table_missing_baseline(self):
        with pytest.raises(KeyError):
            speedup_table({"a": make_trace([1.0])}, baseline="b")


class TestConvergence:
    def test_loss_at_time(self):
        trace = make_trace([1.0, 1.0, 1.0], losses=[3.0, 2.0, 1.0])
        assert loss_at_time(trace, 0.5) == 3.0
        assert loss_at_time(trace, 1.5) == 3.0
        assert loss_at_time(trace, 2.5) == 2.0
        assert loss_at_time(trace, 10.0) == 1.0

    def test_time_to_loss(self):
        trace = make_trace([1.0, 1.0, 1.0], losses=[3.0, 2.0, 1.0])
        assert time_to_loss(trace, 2.0) == pytest.approx(2.0)
        assert time_to_loss(trace, 0.5) == float("inf")

    def test_area_under_loss_curve_ordering(self):
        fast = make_trace([1.0, 1.0], losses=[2.0, 1.0])
        slow = make_trace([2.0, 2.0], losses=[2.0, 1.0])
        horizon = 4.0
        assert area_under_loss_curve(fast, horizon) < area_under_loss_curve(
            slow, horizon
        )

    def test_align_curves_grid(self):
        traces = {
            "a": make_trace([1.0, 1.0], losses=[2.0, 1.0]),
            "b": make_trace([2.0, 2.0], losses=[2.0, 1.5]),
        }
        grid, curves = align_curves(traces, num_points=5)
        assert grid.shape == (5,)
        assert set(curves.keys()) == {"a", "b"}
        assert grid[-1] == pytest.approx(2.0)  # shortest run's horizon

    def test_align_curves_rejects_empty(self):
        with pytest.raises(ValueError):
            align_curves({})


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(
            ["scheme", "time"], [["naive", 1.23456], ["cyclic", 10.5]], precision=2
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.23" in text and "10.50" in text

    def test_format_table_title_and_special_floats(self):
        text = format_table(
            ["a"], [[float("inf")], [float("nan")]], title="My table"
        )
        assert text.startswith("My table")
        assert "inf" in text and "nan" in text

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_to_csv(self):
        csv = to_csv(["a", "b"], [[1, 2.5], ["x", float("inf")]])
        lines = csv.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1].startswith("1,2.5")
        assert "inf" in lines[2]

    def test_to_csv_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            to_csv(["a"], [[1, 2]])

    def test_format_mapping(self):
        text = format_mapping({"mean": 1.234567, "scheme": "naive"}, precision=2)
        assert "mean: 1.23" in text
        assert "scheme: naive" in text
