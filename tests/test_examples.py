"""Smoke tests: every example script runs end to end.

The examples double as living documentation; these tests import each one as
a module and call its ``main()`` so a broken API surface shows up in CI, not
when a user first tries the README commands.  Example defaults are sized for
humans, so the slowest ones are marked accordingly.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLE_FILES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def _load_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    # Register so dataclasses/typing introspection inside the module works.
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


def test_examples_directory_has_expected_scripts():
    assert "quickstart.py" in EXAMPLE_FILES
    assert len(EXAMPLE_FILES) >= 3


@pytest.mark.parametrize("name", EXAMPLE_FILES)
def test_example_runs(name, capsys):
    module = _load_example(name)
    assert hasattr(module, "main"), f"{name} must expose a main() function"
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"
