"""Property-based tests (hypothesis) for the coding core's key invariants.

The invariants checked here are the ones the paper's correctness rests on:

1. every scheme's strategy is robust to its declared straggler count
   (Condition 1 / Theorem 4 / Theorem 6);
2. decoding recovers the exact sum of partial gradients under any straggler
   pattern of the declared size;
3. the heter-aware worst-case makespan matches Theorem 5's lower bound up to
   load quantisation.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import (
    Decoder,
    certify_robustness,
    cyclic_strategy,
    group_based_strategy,
    heterogeneity_aware_strategy,
    makespan_lower_bound,
    optimality_report,
)

# Cluster generator: 3-7 workers with throughputs spanning up to ~10x.
throughput_lists = st.lists(
    st.floats(min_value=0.5, max_value=5.0),
    min_size=3,
    max_size=7,
)


@given(throughputs=throughput_lists, multiplier=st.integers(1, 3), seed=st.integers(0, 2**16))
@settings(max_examples=30, deadline=None)
def test_heter_aware_robustness_property(throughputs, multiplier, seed):
    """Any heter-aware strategy tolerates its declared s = 1 stragglers."""
    k = multiplier * len(throughputs)
    strategy = heterogeneity_aware_strategy(
        throughputs, num_partitions=k, num_stragglers=1, rng=seed
    )
    assert certify_robustness(strategy).robust


@given(throughputs=throughput_lists, seed=st.integers(0, 2**16))
@settings(max_examples=30, deadline=None)
def test_group_based_robustness_property(throughputs, seed):
    """Any group-based strategy tolerates its declared s = 1 stragglers."""
    k = 2 * len(throughputs)
    strategy = group_based_strategy(
        throughputs, num_partitions=k, num_stragglers=1, rng=seed
    )
    assert certify_robustness(strategy).robust


@given(
    num_workers=st.integers(4, 8),
    num_stragglers=st.integers(1, 3),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=30, deadline=None)
def test_cyclic_robustness_property(num_workers, num_stragglers, seed):
    """The cyclic baseline tolerates any s < m stragglers it is built for."""
    if num_stragglers >= num_workers:
        return
    strategy = cyclic_strategy(num_workers, num_stragglers, rng=seed)
    assert certify_robustness(strategy).robust


@given(
    throughputs=throughput_lists,
    seed=st.integers(0, 2**16),
    gradient_dim=st.integers(1, 8),
    data=st.data(),
)
@settings(max_examples=30, deadline=None)
def test_decoding_exactness_property(throughputs, seed, gradient_dim, data):
    """Decoded gradient == sum of partial gradients under any 1-straggler pattern."""
    m = len(throughputs)
    k = 2 * m
    strategy = heterogeneity_aware_strategy(
        throughputs, num_partitions=k, num_stragglers=1, rng=seed
    )
    rng = np.random.default_rng(seed)
    partial_gradients = rng.normal(size=(k, gradient_dim))
    expected = partial_gradients.sum(axis=0)

    coded = {}
    for worker in range(m):
        support = list(strategy.support(worker))
        if support:
            coded[worker] = (
                strategy.row(worker)[support] @ partial_gradients[support]
            )
        else:
            coded[worker] = np.zeros(gradient_dim)

    straggler = data.draw(st.integers(0, m - 1))
    received = {w: g for w, g in coded.items() if w != straggler}
    recovered = Decoder(strategy).decode(received)
    scale = max(1.0, float(np.abs(expected).max()))
    assert np.allclose(recovered, expected, atol=1e-6 * scale, rtol=1e-6)


@given(throughputs=throughput_lists, seed=st.integers(0, 2**16))
@settings(max_examples=30, deadline=None)
def test_theorem5_lower_bound_property(throughputs, seed):
    """No strategy beats the bound; heter-aware stays within quantisation of it."""
    m = len(throughputs)
    k = 3 * m
    strategy = heterogeneity_aware_strategy(
        throughputs, num_partitions=k, num_stragglers=1, rng=seed
    )
    bound = makespan_lower_bound(throughputs, k, 1)
    report = optimality_report(strategy, throughputs, tolerance=0.0)
    assert report.worst_case >= bound - 1e-9
    # When no worker's proportional share exceeds k (the paper's implicit
    # n_i <= k assumption), integer rounding of the loads costs at most one
    # partition on the critical worker: T(B) <= bound + max_i (1 / c_i).
    total = float(np.sum(throughputs))
    if 2 * k * max(throughputs) / total <= k:
        slack = 1.0 / min(throughputs)
        assert report.worst_case <= bound + slack + 1e-9


@given(
    throughputs=throughput_lists,
    multiplier=st.integers(1, 3),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=30, deadline=None)
def test_group_rows_tile_property(throughputs, multiplier, seed):
    """Every detected group's rows sum to the all-ones vector exactly."""
    k = multiplier * len(throughputs)
    strategy = group_based_strategy(
        throughputs, num_partitions=k, num_stragglers=1, rng=seed
    )
    for group in strategy.groups:
        combined = strategy.matrix[list(group)].sum(axis=0)
        assert np.allclose(combined, 1.0)
