"""Unit and property tests for repro.coding.allocation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.allocation import (
    cyclic_placement,
    heterogeneity_aware_allocation,
    proportional_integer_loads,
    uniform_allocation,
)
from repro.coding.types import AllocationError


class TestProportionalIntegerLoads:
    def test_exact_proportions(self):
        # Example 1 of the paper: c = [1,2,3,4,4], k = 7, s = 1 -> loads 1,2,3,4,4.
        loads = proportional_integer_loads([1, 2, 3, 4, 4], total=14, cap=7)
        assert loads == [1, 2, 3, 4, 4]

    def test_sum_preserved_with_rounding(self):
        loads = proportional_integer_loads([1.0, 1.0, 1.0], total=10, cap=10)
        assert sum(loads) == 10

    def test_cap_respected(self):
        loads = proportional_integer_loads([100.0, 1.0, 1.0], total=12, cap=6)
        assert max(loads) <= 6
        assert sum(loads) == 12

    def test_zero_total(self):
        assert proportional_integer_loads([1.0, 2.0], total=0, cap=5) == [0, 0]

    def test_rejects_negative_throughput(self):
        with pytest.raises(AllocationError):
            proportional_integer_loads([1.0, -1.0], total=4, cap=4)

    def test_rejects_infeasible_capacity(self):
        with pytest.raises(AllocationError):
            proportional_integer_loads([1.0, 1.0], total=10, cap=4)

    def test_rejects_empty(self):
        with pytest.raises(AllocationError):
            proportional_integer_loads([], total=2, cap=2)

    @given(
        throughputs=st.lists(
            st.floats(min_value=0.1, max_value=100.0), min_size=2, max_size=12
        ),
        k=st.integers(min_value=2, max_value=20),
        s=st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_sum_and_cap(self, throughputs, k, s):
        """Loads always sum to k(s+1) and never exceed k (when feasible)."""
        m = len(throughputs)
        total = k * (s + 1)
        if total > m * k:
            return  # infeasible: more copies than capacity
        loads = proportional_integer_loads(throughputs, total=total, cap=k)
        assert sum(loads) == total
        assert all(0 <= n <= k for n in loads)

    @given(
        scale=st.floats(min_value=0.5, max_value=50.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_scale_invariance(self, scale):
        """Only throughput ratios matter, not their absolute scale."""
        base = [1.0, 2.0, 3.0, 4.0]
        scaled = [scale * c for c in base]
        assert proportional_integer_loads(
            base, total=16, cap=8
        ) == proportional_integer_loads(scaled, total=16, cap=8)


class TestCyclicPlacement:
    def test_basic_wraparound(self):
        assignment = cyclic_placement([2, 2, 2], num_partitions=3)
        assert assignment.partitions_per_worker == ((0, 1), (2, 0), (1, 2))

    def test_replication_uniform(self):
        assignment = cyclic_placement([2, 2, 2], num_partitions=3)
        assert assignment.replication_counts().tolist() == [2, 2, 2]

    def test_zero_load_worker(self):
        assignment = cyclic_placement([0, 3, 0], num_partitions=3)
        assert assignment.partitions_per_worker[0] == ()
        assert assignment.partitions_per_worker[2] == ()
        assert assignment.loads == (0, 3, 0)

    def test_rejects_load_above_k(self):
        with pytest.raises(AllocationError):
            cyclic_placement([4], num_partitions=3)

    def test_rejects_negative_load(self):
        with pytest.raises(AllocationError):
            cyclic_placement([-1, 2], num_partitions=3)


class TestUniformAllocation:
    def test_canonical_tandon_configuration(self):
        # k = m: every worker holds s + 1 consecutive partitions.
        assignment = uniform_allocation(num_workers=5, num_partitions=5, num_stragglers=2)
        assert assignment.loads == (3, 3, 3, 3, 3)
        assert assignment.replication_counts().tolist() == [3] * 5

    def test_rejects_non_divisible(self):
        with pytest.raises(AllocationError):
            uniform_allocation(num_workers=5, num_partitions=7, num_stragglers=1)

    def test_rejects_too_many_stragglers(self):
        with pytest.raises(AllocationError):
            uniform_allocation(num_workers=3, num_partitions=3, num_stragglers=3)

    def test_rejects_overfull_workers(self):
        # k(s+1)/m > k  <=>  s + 1 > m
        with pytest.raises(AllocationError):
            uniform_allocation(num_workers=2, num_partitions=2, num_stragglers=1 + 1)


class TestHeterogeneityAwareAllocation:
    def test_paper_example_1(self, example_throughputs):
        assignment = heterogeneity_aware_allocation(
            example_throughputs, num_partitions=7, num_stragglers=1
        )
        assert assignment.loads == (1, 2, 3, 4, 4)
        assert assignment.replication_counts().tolist() == [2] * 7

    def test_replication_is_exactly_s_plus_1(self):
        assignment = heterogeneity_aware_allocation(
            [1, 1, 5, 10], num_partitions=8, num_stragglers=2
        )
        assert assignment.replication_counts().tolist() == [3] * 8

    def test_loads_monotone_in_throughput(self):
        assignment = heterogeneity_aware_allocation(
            [1, 2, 4, 8], num_partitions=15, num_stragglers=1
        )
        loads = assignment.loads
        assert list(loads) == sorted(loads)

    def test_homogeneous_matches_uniform(self):
        hetero = heterogeneity_aware_allocation(
            [3.0] * 4, num_partitions=4, num_stragglers=1
        )
        uniform = uniform_allocation(num_workers=4, num_partitions=4, num_stragglers=1)
        assert hetero.loads == uniform.loads

    def test_rejects_s_geq_m(self):
        with pytest.raises(AllocationError):
            heterogeneity_aware_allocation([1, 2], num_partitions=4, num_stragglers=2)

    def test_rejects_nonpositive_throughput(self):
        with pytest.raises(AllocationError):
            heterogeneity_aware_allocation([1, 0], num_partitions=4, num_stragglers=1)

    @given(
        throughputs=st.lists(
            st.floats(min_value=0.2, max_value=20.0), min_size=2, max_size=10
        ),
        multiplier=st.integers(min_value=1, max_value=4),
        s=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_every_partition_has_s_plus_1_copies(
        self, throughputs, multiplier, s
    ):
        m = len(throughputs)
        if s >= m:
            return
        k = multiplier * m
        assignment = heterogeneity_aware_allocation(
            throughputs, num_partitions=k, num_stragglers=s
        )
        counts = assignment.replication_counts()
        assert np.all(counts == s + 1)
        assert assignment.total_copies == k * (s + 1)
        # Every copy of a partition sits on a distinct worker by construction.
        for partition in range(k):
            holders = assignment.workers_holding(partition)
            assert len(holders) == len(set(holders)) == s + 1
