"""Unit tests for the scheme factories (naive, cyclic, fractional, heter-aware)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding import (
    SCHEME_NAMES,
    build_strategy,
    certify_robustness,
    cyclic_strategy,
    fractional_repetition_strategy,
    heterogeneity_aware_strategy,
    naive_strategy,
    natural_partitions,
)
from repro.coding.types import AllocationError, CodingError


class TestNaiveStrategy:
    def test_one_partition_per_worker(self):
        strategy = naive_strategy(6)
        assert strategy.num_partitions == 6
        assert strategy.loads == (1,) * 6
        assert strategy.num_stragglers == 0

    def test_uneven_partitions_spread(self):
        strategy = naive_strategy(4, num_partitions=10)
        assert sum(strategy.loads) == 10
        assert max(strategy.loads) - min(strategy.loads) <= 1

    def test_matrix_is_support_indicator(self):
        strategy = naive_strategy(3)
        assert np.array_equal(strategy.matrix, np.eye(3))

    def test_rejects_fewer_partitions_than_workers(self):
        with pytest.raises(AllocationError):
            naive_strategy(5, num_partitions=3)

    def test_rejects_zero_workers(self):
        with pytest.raises(AllocationError):
            naive_strategy(0)


class TestCyclicStrategy:
    def test_canonical_configuration(self):
        strategy = cyclic_strategy(6, 2, rng=0)
        assert strategy.num_partitions == 6
        assert strategy.loads == (3,) * 6
        assert strategy.scheme == "cyclic"

    def test_staggered_supports(self):
        strategy = cyclic_strategy(5, 1, rng=0)
        assert strategy.support(0) == (0, 1)
        assert strategy.support(1) == (1, 2)
        assert strategy.support(4) == (4, 0)

    def test_supports_are_all_distinct(self):
        strategy = cyclic_strategy(8, 1, num_partitions=16, rng=0)
        supports = {frozenset(strategy.support(w)) for w in range(8)}
        assert len(supports) == 8

    def test_robustness(self):
        for s in (1, 2, 3):
            strategy = cyclic_strategy(6, s, rng=s)
            assert certify_robustness(strategy).robust

    def test_zero_stragglers_degenerates_to_indicator(self):
        strategy = cyclic_strategy(4, 0, rng=0)
        assert np.array_equal(strategy.matrix, np.eye(4))

    def test_rejects_indivisible_partitions(self):
        with pytest.raises(AllocationError):
            cyclic_strategy(4, 1, num_partitions=6, rng=0)


class TestFractionalRepetitionStrategy:
    def test_group_structure(self):
        strategy = fractional_repetition_strategy(6, 2, 6)
        # s + 1 = 3 replica groups of 2 workers; each worker stores half the
        # 6 partitions, i.e. 3 of them.
        assert len(strategy.groups) == 3
        assert strategy.loads == (3,) * 6

    def test_robustness(self):
        strategy = fractional_repetition_strategy(6, 1, 12)
        assert certify_robustness(strategy).robust

    def test_rows_are_indicators(self):
        strategy = fractional_repetition_strategy(4, 1, 4)
        assert set(np.unique(strategy.matrix)) <= {0.0, 1.0}

    def test_rejects_non_divisible_workers(self):
        with pytest.raises(AllocationError):
            fractional_repetition_strategy(5, 1, 5)

    def test_rejects_non_divisible_partitions(self):
        with pytest.raises(AllocationError):
            fractional_repetition_strategy(6, 1, 7)


class TestHeterogeneityAwareStrategy:
    def test_paper_example_support_structure(self, example_throughputs):
        strategy = heterogeneity_aware_strategy(
            example_throughputs, num_partitions=7, num_stragglers=1, rng=0
        )
        # Example 1 of the paper: loads proportional to [1,2,3,4,4].
        assert strategy.loads == (1, 2, 3, 4, 4)
        assert strategy.scheme == "heter_aware"

    def test_robust_for_various_s(self):
        throughputs = [1.0, 2.0, 2.0, 3.0, 4.0, 6.0]
        for s in (0, 1, 2):
            strategy = heterogeneity_aware_strategy(
                throughputs, num_partitions=12, num_stragglers=s, rng=s
            )
            assert certify_robustness(strategy).robust

    def test_metadata_records_throughputs(self, example_throughputs):
        strategy = heterogeneity_aware_strategy(
            example_throughputs, num_partitions=7, num_stragglers=1, rng=0
        )
        assert strategy.metadata["throughputs"] == tuple(example_throughputs)

    def test_equal_throughputs_give_equal_loads(self):
        strategy = heterogeneity_aware_strategy(
            [2.0] * 4, num_partitions=8, num_stragglers=1, rng=0
        )
        assert strategy.loads == (4, 4, 4, 4)

    def test_computation_times_balanced_for_exact_estimates(self):
        throughputs = [1.0, 2.0, 3.0, 4.0]
        strategy = heterogeneity_aware_strategy(
            throughputs, num_partitions=20, num_stragglers=1, rng=0
        )
        times = strategy.computation_times(throughputs)
        # Loads proportional to throughput => near-equal completion times
        # (up to integer rounding of the loads).
        assert times.max() / times.min() < 1.3


class TestRegistry:
    def test_all_names_buildable(self):
        # m = 6 and k = 12 satisfy every baseline's divisibility constraints
        # for s = 1 (fractional needs (s + 1) | m, cyclic needs m | k).
        throughputs = [1.0, 2.0, 2.0, 3.0, 4.0, 4.0]
        for scheme in SCHEME_NAMES:
            strategy = build_strategy(
                scheme,
                throughputs=throughputs,
                num_partitions=12,
                num_stragglers=1,
                rng=0,
            )
            assert strategy.num_workers == 6
            assert strategy.num_partitions == 12

    def test_unknown_scheme_rejected(self, example_throughputs):
        with pytest.raises(CodingError, match="unknown scheme"):
            build_strategy(
                "bogus",
                throughputs=example_throughputs,
                num_partitions=10,
                num_stragglers=1,
            )

    def test_natural_partitions(self):
        assert natural_partitions("naive", 8) == 8
        assert natural_partitions("cyclic", 8) == 8
        assert natural_partitions("fractional", 8) == 8
        assert natural_partitions("ssp", 8) == 8
        assert natural_partitions("heter_aware", 8) == 16
        assert natural_partitions("group_based", 8, heter_multiplier=3) == 24

    def test_natural_partitions_rejects_bad_input(self):
        with pytest.raises(CodingError):
            natural_partitions("naive", 0)
        with pytest.raises(CodingError):
            natural_partitions("heter_aware", 4, heter_multiplier=0)
