"""Unit tests for group detection (Algorithm 2) and the group-based scheme."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding import (
    certify_robustness,
    detect_groups,
    find_all_groups,
    group_based_strategy,
    heterogeneity_aware_allocation,
    prune_groups,
)
from repro.coding.types import PartitionAssignment


def paper_example_2_assignment() -> PartitionAssignment:
    """The support structure of the paper's Example 2 (7 workers, 4 partitions)."""
    return PartitionAssignment(
        num_workers=7,
        num_partitions=4,
        partitions_per_worker=(
            (0, 1),      # W1
            (2,),        # W2
            (3,),        # W3
            (0, 1, 2),   # W4
            (0, 1, 3),   # W5
            (0, 2, 3),   # W6
            (1, 2, 3),   # W7
        ),
    )


class TestFindAllGroups:
    def test_paper_example_2_groups(self):
        groups = find_all_groups(paper_example_2_assignment())
        as_sets = {frozenset(g) for g in groups}
        # Example 2 lists G1 = {W1,W2,W3}, G2 = {W3,W4}, G3 = {W2,W5}
        # (0-indexed: {0,1,2}, {2,3}, {1,4}).
        assert frozenset({0, 1, 2}) in as_sets
        assert frozenset({2, 3}) in as_sets
        assert frozenset({1, 4}) in as_sets

    def test_every_group_tiles_the_dataset(self):
        assignment = paper_example_2_assignment()
        for group in find_all_groups(assignment):
            covered: list[int] = []
            for worker in group:
                covered.extend(assignment.partitions_per_worker[worker])
            assert sorted(covered) == list(range(assignment.num_partitions))

    def test_no_groups_when_no_tiling_exists(self):
        assignment = PartitionAssignment(
            num_workers=2,
            num_partitions=3,
            partitions_per_worker=((0, 1), (1, 2)),
        )
        assert find_all_groups(assignment) == []

    def test_single_worker_group(self):
        assignment = PartitionAssignment(
            num_workers=2,
            num_partitions=2,
            partitions_per_worker=((0, 1), (0,)),
        )
        groups = find_all_groups(assignment)
        assert (0,) in groups

    def test_empty_support_workers_excluded(self):
        assignment = PartitionAssignment(
            num_workers=3,
            num_partitions=2,
            partitions_per_worker=((0, 1), (), (0, 1)),
        )
        groups = find_all_groups(assignment)
        assert all(1 not in group for group in groups)

    def test_max_groups_bound_respected(self):
        assignment = heterogeneity_aware_allocation(
            [1.0] * 8, num_partitions=16, num_stragglers=3
        )
        groups = find_all_groups(assignment, max_groups=5)
        assert len(groups) <= 5

    def test_max_nodes_bound_terminates_large_instances(self):
        # 40 equal workers, s = 3: astronomically many tilings exist; the
        # node budget must keep this fast and still return some groups.
        assignment = heterogeneity_aware_allocation(
            [1.0] * 40, num_partitions=40, num_stragglers=3
        )
        groups = find_all_groups(assignment, max_groups=64, max_nodes=20_000)
        assert len(groups) <= 64


class TestPruneGroups:
    def test_paper_example_2_prunes_the_overlapping_group(self):
        groups = [(0, 1, 2), (2, 3), (1, 4)]
        pruned = prune_groups(groups)
        # G1 = (0,1,2) intersects both others and must go.
        assert (0, 1, 2) not in pruned
        assert set(pruned) == {(2, 3), (1, 4)}

    def test_disjoint_groups_untouched(self):
        groups = [(0, 1), (2, 3), (4,)]
        assert prune_groups(groups) == [(0, 1), (2, 3), (4,)]

    def test_result_is_pairwise_disjoint(self):
        groups = [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]
        pruned = prune_groups(groups)
        seen: set[int] = set()
        for group in pruned:
            assert not (seen & set(group))
            seen |= set(group)

    def test_duplicates_removed(self):
        assert prune_groups([(0, 1), (1, 0)]) == [(0, 1)]

    def test_empty_input(self):
        assert prune_groups([]) == []


class TestGroupBasedStrategy:
    def test_paper_example_1_groups_detected(self, example_throughputs):
        strategy = group_based_strategy(
            example_throughputs, num_partitions=7, num_stragglers=1, rng=0
        )
        assert strategy.scheme == "group_based"
        assert len(strategy.groups) >= 1
        # Groups are pairwise disjoint.
        seen: set[int] = set()
        for group in strategy.groups:
            assert not (seen & set(group))
            seen |= set(group)

    def test_group_rows_are_indicators(self, example_throughputs):
        strategy = group_based_strategy(
            example_throughputs, num_partitions=7, num_stragglers=1, rng=0
        )
        for group in strategy.groups:
            for worker in group:
                support = list(strategy.support(worker))
                assert np.allclose(strategy.row(worker)[support], 1.0)

    def test_group_rows_sum_to_all_ones(self, example_throughputs):
        strategy = group_based_strategy(
            example_throughputs, num_partitions=7, num_stragglers=1, rng=0
        )
        for group in strategy.groups:
            combined = strategy.matrix[list(group)].sum(axis=0)
            assert np.allclose(combined, 1.0)

    def test_robustness_s1(self, example_throughputs):
        strategy = group_based_strategy(
            example_throughputs, num_partitions=7, num_stragglers=1, rng=0
        )
        assert certify_robustness(strategy).robust

    def test_robustness_s2(self):
        throughputs = [1.0, 1.0, 2.0, 3.0, 3.0, 4.0]
        strategy = group_based_strategy(
            throughputs, num_partitions=12, num_stragglers=2, rng=0
        )
        assert certify_robustness(strategy).robust

    def test_robustness_s3_heterogeneous(self):
        throughputs = [1.0, 2.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        strategy = group_based_strategy(
            throughputs, num_partitions=14, num_stragglers=3, rng=1
        )
        assert certify_robustness(strategy).robust

    def test_loads_match_heter_aware_allocation(self, example_throughputs):
        strategy = group_based_strategy(
            example_throughputs, num_partitions=7, num_stragglers=1, rng=0
        )
        assert strategy.loads == (1, 2, 3, 4, 4)

    def test_degenerates_gracefully_without_groups(self):
        # A support where no tiling exists: 3 workers, k = 3, s = 1, loads 2
        # each -> every pair of workers overlaps, no groups.
        throughputs = [1.0, 1.0, 1.0]
        strategy = group_based_strategy(
            throughputs, num_partitions=3, num_stragglers=1, rng=0
        )
        assert strategy.groups == ()
        assert certify_robustness(strategy).robust

    def test_metadata_counts_groups(self, example_throughputs):
        strategy = group_based_strategy(
            example_throughputs, num_partitions=7, num_stragglers=1, rng=0
        )
        assert strategy.metadata["num_groups"] == len(strategy.groups)
