"""Unit tests for repro.coding.construction (Algorithm 1's matrix builder)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding.allocation import heterogeneity_aware_allocation, uniform_allocation
from repro.coding.construction import (
    auxiliary_matrix_is_valid,
    build_coding_matrix,
    draw_auxiliary_matrix,
)
from repro.coding.types import ConstructionError, PartitionAssignment


class TestDrawAuxiliaryMatrix:
    def test_shape(self, rng):
        matrix = draw_auxiliary_matrix(num_stragglers=2, num_workers=5, rng=rng)
        assert matrix.shape == (3, 5)

    def test_entries_in_open_unit_interval(self, rng):
        matrix = draw_auxiliary_matrix(num_stragglers=3, num_workers=10, rng=rng)
        assert np.all(matrix > 0.0)
        assert np.all(matrix < 1.0)

    def test_rejects_negative_stragglers(self, rng):
        with pytest.raises(ConstructionError):
            draw_auxiliary_matrix(num_stragglers=-1, num_workers=3, rng=rng)

    def test_rejects_zero_workers(self, rng):
        with pytest.raises(ConstructionError):
            draw_auxiliary_matrix(num_stragglers=1, num_workers=0, rng=rng)


class TestAuxiliaryMatrixIsValid:
    def test_random_matrix_is_valid(self, rng, example_throughputs):
        assignment = heterogeneity_aware_allocation(
            example_throughputs, num_partitions=7, num_stragglers=1
        )
        matrix = draw_auxiliary_matrix(1, len(example_throughputs), rng)
        assert auxiliary_matrix_is_valid(matrix, assignment)

    def test_degenerate_matrix_is_invalid(self, example_throughputs):
        assignment = heterogeneity_aware_allocation(
            example_throughputs, num_partitions=7, num_stragglers=1
        )
        # Identical rows make every 2x2 submatrix singular.
        matrix = np.ones((2, 5)) * 0.5
        assert not auxiliary_matrix_is_valid(matrix, assignment)

    def test_rejects_wrong_replication(self):
        assignment = PartitionAssignment(
            num_workers=2,
            num_partitions=2,
            partitions_per_worker=((0,), (1,)),
        )
        matrix = np.random.default_rng(0).uniform(size=(2, 2))
        with pytest.raises(ConstructionError):
            auxiliary_matrix_is_valid(matrix, assignment)


class TestBuildCodingMatrix:
    def test_cb_equals_all_ones(self, example_throughputs):
        assignment = heterogeneity_aware_allocation(
            example_throughputs, num_partitions=7, num_stragglers=1
        )
        matrix, auxiliary = build_coding_matrix(assignment, num_stragglers=1, rng=0)
        assert matrix.shape == (5, 7)
        assert np.allclose(auxiliary @ matrix, 1.0)

    def test_support_respected(self, example_throughputs):
        assignment = heterogeneity_aware_allocation(
            example_throughputs, num_partitions=7, num_stragglers=1
        )
        matrix, _ = build_coding_matrix(assignment, num_stragglers=1, rng=0)
        support = assignment.support_matrix()
        assert np.all(matrix[~support] == 0.0)
        # Non-zero everywhere on the support (probability-1 event).
        assert np.all(np.abs(matrix[support]) > 0.0)

    def test_uniform_support_also_works(self):
        assignment = uniform_allocation(num_workers=6, num_partitions=6, num_stragglers=2)
        matrix, auxiliary = build_coding_matrix(assignment, num_stragglers=2, rng=1)
        assert np.allclose(auxiliary @ matrix, 1.0)

    def test_deterministic_for_fixed_seed(self, example_throughputs):
        assignment = heterogeneity_aware_allocation(
            example_throughputs, num_partitions=7, num_stragglers=1
        )
        matrix_a, _ = build_coding_matrix(assignment, num_stragglers=1, rng=42)
        matrix_b, _ = build_coding_matrix(assignment, num_stragglers=1, rng=42)
        assert np.array_equal(matrix_a, matrix_b)

    def test_different_seeds_differ(self, example_throughputs):
        assignment = heterogeneity_aware_allocation(
            example_throughputs, num_partitions=7, num_stragglers=1
        )
        matrix_a, _ = build_coding_matrix(assignment, num_stragglers=1, rng=1)
        matrix_b, _ = build_coding_matrix(assignment, num_stragglers=1, rng=2)
        assert not np.array_equal(matrix_a, matrix_b)

    def test_rejects_wrong_replication(self):
        assignment = PartitionAssignment(
            num_workers=3,
            num_partitions=3,
            partitions_per_worker=((0, 1), (1, 2), (0,)),
        )
        with pytest.raises(ConstructionError, match="replicated"):
            build_coding_matrix(assignment, num_stragglers=1, rng=0)
