"""Property tests: the incremental prefix search vs the per-prefix reference.

``Decoder.earliest_decodable_prefix`` replaced a linear walk (one full decode
attempt per prefix) with group-completion counters plus an incremental span
test.  These tests assert exact equivalence — same prefix index, same decode
result at that prefix — on randomized strategies and completion orders, and
cover the construction-time group verification satellite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._reference import earliest_decodable_prefix_reference
from repro.coding import (
    Decoder,
    cyclic_strategy,
    fractional_repetition_strategy,
    group_based_strategy,
    heterogeneity_aware_strategy,
    naive_strategy,
)
from repro.coding.registry import build_strategy, natural_partitions
from repro.coding.types import CodingStrategy, DecodingError, PartitionAssignment


def random_strategies(seed: int):
    """A grid of strategies across schemes / sizes / straggler budgets."""
    rng = np.random.default_rng(seed)
    num_workers = int(rng.integers(4, 10))
    throughputs = rng.uniform(50.0, 400.0, size=num_workers)
    strategies = [naive_strategy(num_workers)]
    for s in (1, 2):
        if s >= num_workers:
            continue
        strategies.append(cyclic_strategy(num_workers, s, rng=seed))
        strategies.append(
            heterogeneity_aware_strategy(
                throughputs,
                num_partitions=2 * num_workers,
                num_stragglers=s,
                rng=seed,
            )
        )
        strategies.append(
            group_based_strategy(
                throughputs,
                num_partitions=2 * num_workers,
                num_stragglers=s,
                rng=seed,
            )
        )
        if num_workers % (s + 1) == 0:
            strategies.append(fractional_repetition_strategy(num_workers, s))
    return strategies


def random_orders(strategy: CodingStrategy, rng: np.random.Generator, count: int):
    """Random completion orders: full permutations and truncated subsets."""
    m = strategy.num_workers
    orders = []
    for _ in range(count):
        permutation = rng.permutation(m).tolist()
        keep = int(rng.integers(1, m + 1))
        orders.append(permutation[:keep])
    orders.append([])  # degenerate: nobody finished
    orders.append(list(range(m)))
    orders.append(list(range(m - 1, -1, -1)))
    return orders


class TestIncrementalPrefixEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_reference_on_random_orders(self, seed):
        rng = np.random.default_rng(1000 + seed)
        for strategy in random_strategies(seed):
            incremental_decoder = Decoder(strategy)
            reference_decoder = Decoder(strategy)
            for order in random_orders(strategy, rng, count=12):
                incremental = incremental_decoder.earliest_decodable_prefix(order)
                reference = earliest_decodable_prefix_reference(
                    reference_decoder, order
                )
                assert incremental == reference, (
                    f"{strategy.scheme}: prefix mismatch on order {order}"
                )
                if incremental is not None:
                    finished = order[:incremental]
                    a = incremental_decoder.decoding_vector(finished)
                    b = reference_decoder.decoding_vector(finished)
                    assert a is not None and b is not None
                    assert np.array_equal(a.coefficients, b.coefficients)
                    assert a.workers_used == b.workers_used
                    assert a.used_group == b.used_group

    @pytest.mark.parametrize("seed", range(4))
    def test_repeated_workers_in_order_are_harmless(self, seed):
        rng = np.random.default_rng(seed)
        for strategy in random_strategies(seed)[:3]:
            m = strategy.num_workers
            order = rng.integers(0, m, size=2 * m).tolist()  # duplicates likely
            incremental = Decoder(strategy).earliest_decodable_prefix(order)
            reference = earliest_decodable_prefix_reference(
                Decoder(strategy), order
            )
            assert incremental == reference

    def test_out_of_range_worker_raises(self, example_throughputs):
        strategy = heterogeneity_aware_strategy(
            example_throughputs, num_partitions=7, num_stragglers=1, rng=0
        )
        with pytest.raises(DecodingError, match="out of range"):
            Decoder(strategy).earliest_decodable_prefix([0, 99])

    def test_prefix_result_lands_in_decoder_cache(self, example_throughputs):
        strategy = heterogeneity_aware_strategy(
            example_throughputs, num_partitions=7, num_stragglers=1, rng=0
        )
        decoder = Decoder(strategy)
        order = list(range(strategy.num_workers))
        prefix = decoder.earliest_decodable_prefix(order)
        assert prefix is not None
        # The follow-up decoding_vector call is a cache hit (same object).
        first = decoder.decoding_vector(order[:prefix])
        second = decoder.decoding_vector(order[:prefix])
        assert first is second


class TestGroupVerificationAtConstruction:
    def test_groups_verified_once(self, example_throughputs):
        strategy = group_based_strategy(
            example_throughputs, num_partitions=7, num_stragglers=1, rng=0
        )
        assert strategy.groups
        decoder = Decoder(strategy)
        assert len(decoder._verified_groups) == len(strategy.groups)

    def test_invalid_group_is_skipped(self):
        """A declared group whose rows do not sum to all-ones never decodes."""
        matrix = np.array(
            [
                [1.0, 0.0, 1.0],
                [0.0, 2.0, 0.0],  # pair sums to [1, 2, 1] != all-ones
                [1.0, 1.0, 1.0],
            ]
        )
        assignment = PartitionAssignment(
            num_workers=3,
            num_partitions=3,
            partitions_per_worker=((0, 2), (1,), (0, 1, 2)),
        )
        strategy = CodingStrategy(
            matrix=matrix,
            assignment=assignment,
            num_stragglers=0,
            scheme="synthetic",
            groups=((0, 1), (2,)),
        )
        decoder = Decoder(strategy)
        assert len(decoder._verified_groups) == 1  # only the singleton survives
        result = decoder.decoding_vector([0, 1])
        assert result is None or result.used_group != (0, 1)
        full = decoder.decoding_vector([2])
        assert full is not None and full.used_group == (2,)
        # The incremental walk must agree with the reference on this edge.
        for order in ([0, 1, 2], [1, 0, 2], [2, 0, 1]):
            assert Decoder(strategy).earliest_decodable_prefix(
                order
            ) == earliest_decodable_prefix_reference(Decoder(strategy), order)

    def test_group_fast_path_matches_scan_order(self, example_throughputs):
        strategy = group_based_strategy(
            example_throughputs, num_partitions=7, num_stragglers=1, rng=0
        )
        if len(strategy.groups) < 2:
            pytest.skip("needs at least two groups")
        decoder = Decoder(strategy)
        # Finish every worker: the first group in strategy order must win.
        result = decoder.decoding_vector(list(range(strategy.num_workers)))
        assert result is not None
        assert result.used_group == tuple(sorted(strategy.groups[0]))


class TestDecodeMatrix:
    def test_matches_dict_decode(self, example_throughputs, rng):
        strategy = heterogeneity_aware_strategy(
            example_throughputs, num_partitions=7, num_stragglers=1, rng=0
        )
        decoder = Decoder(strategy)
        gradients = rng.normal(size=(7, 13))
        from repro.learning.gradients import encode_all_workers_matrix

        coded = encode_all_workers_matrix(strategy, gradients)
        workers = list(range(1, strategy.num_workers))  # drop worker 0
        stacked = decoder.decode_matrix(coded[workers], workers)
        mapping = {w: coded[w] for w in workers}
        assert np.allclose(stacked, decoder.decode(mapping), rtol=1e-12, atol=1e-12)
        assert np.allclose(stacked, gradients.sum(axis=0), atol=1e-8)

    def test_full_stack_defaults_to_all_workers(self, example_throughputs, rng):
        strategy = heterogeneity_aware_strategy(
            example_throughputs, num_partitions=7, num_stragglers=1, rng=0
        )
        gradients = rng.normal(size=(7, 5))
        from repro.learning.gradients import encode_all_workers_matrix

        coded = encode_all_workers_matrix(strategy, gradients)
        decoded = Decoder(strategy).decode_matrix(coded)
        assert np.allclose(decoded, gradients.sum(axis=0), atol=1e-8)

    def test_scalar_gradients_round_trip(self, example_throughputs, rng):
        """A (k,) gradient stack encodes to (m,) and decodes to a scalar."""
        strategy = heterogeneity_aware_strategy(
            example_throughputs, num_partitions=7, num_stragglers=1, rng=0
        )
        from repro.learning.gradients import encode_all_workers_matrix

        gradients = rng.normal(size=7)
        coded = encode_all_workers_matrix(strategy, gradients)
        assert coded.shape == (strategy.num_workers,)
        decoded = Decoder(strategy).decode_matrix(coded)
        assert decoded.shape == ()
        assert np.allclose(decoded, gradients.sum(), atol=1e-8)

    def test_duplicate_workers_rejected(self, example_throughputs):
        strategy = heterogeneity_aware_strategy(
            example_throughputs, num_partitions=7, num_stragglers=1, rng=0
        )
        with pytest.raises(DecodingError, match="duplicate"):
            Decoder(strategy).decode_matrix(np.zeros((2, 3)), [1, 1])

    def test_undecodable_stack_raises(self, example_throughputs):
        strategy = heterogeneity_aware_strategy(
            example_throughputs, num_partitions=7, num_stragglers=1, rng=0
        )
        with pytest.raises(DecodingError, match="cannot recover"):
            Decoder(strategy).decode_matrix(np.zeros((1, 3)), [0])
