"""Unit tests for repro.coding.decoding."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.coding import (
    Decoder,
    build_decoding_matrix,
    cyclic_strategy,
    decode_gradient,
    fractional_repetition_strategy,
    group_based_strategy,
    heterogeneity_aware_strategy,
    naive_strategy,
)
from repro.coding.types import DecodingError


def encode_all(strategy, partial_gradients):
    """Encode every worker's coded gradient directly from B."""
    coded = {}
    for worker in range(strategy.num_workers):
        support = list(strategy.support(worker))
        if support:
            coded[worker] = strategy.row(worker)[support] @ partial_gradients[support]
        else:
            coded[worker] = np.zeros(partial_gradients.shape[1])
    return coded


@pytest.fixture
def heter_strategy(example_throughputs):
    return heterogeneity_aware_strategy(
        example_throughputs, num_partitions=7, num_stragglers=1, rng=0
    )


@pytest.fixture
def partial_gradients(heter_strategy, rng):
    return rng.normal(size=(heter_strategy.num_partitions, 13))


class TestDecoder:
    def test_exact_recovery_with_no_stragglers(self, heter_strategy, partial_gradients):
        coded = encode_all(heter_strategy, partial_gradients)
        recovered = Decoder(heter_strategy).decode(coded)
        assert np.allclose(recovered, partial_gradients.sum(axis=0))

    def test_exact_recovery_under_every_single_straggler(
        self, heter_strategy, partial_gradients
    ):
        coded = encode_all(heter_strategy, partial_gradients)
        expected = partial_gradients.sum(axis=0)
        decoder = Decoder(heter_strategy)
        for straggler in range(heter_strategy.num_workers):
            received = {w: g for w, g in coded.items() if w != straggler}
            assert np.allclose(decoder.decode(received), expected, atol=1e-8)

    def test_two_stragglers_fail_for_s_equals_one(
        self, heter_strategy, partial_gradients
    ):
        coded = encode_all(heter_strategy, partial_gradients)
        decoder = Decoder(heter_strategy)
        undecodable = 0
        for drop in itertools.combinations(range(heter_strategy.num_workers), 2):
            received = {w: g for w, g in coded.items() if w not in drop}
            if not decoder.can_decode(received.keys()):
                undecodable += 1
        # At least one 2-straggler pattern must be undecodable for an s=1 code
        # whose minimum replication is 2.
        assert undecodable > 0

    def test_empty_input_raises(self, heter_strategy):
        with pytest.raises(DecodingError):
            Decoder(heter_strategy).decode({})

    def test_inconsistent_shapes_raise(self, heter_strategy, partial_gradients):
        coded = encode_all(heter_strategy, partial_gradients)
        coded[0] = np.zeros(5)
        with pytest.raises(DecodingError, match="shapes"):
            Decoder(heter_strategy).decode(coded)

    def test_out_of_range_worker_raises(self, heter_strategy):
        with pytest.raises(DecodingError, match="out of range"):
            Decoder(heter_strategy).decoding_vector([99])

    def test_undecodable_set_raises_on_decode(self, heter_strategy, partial_gradients):
        coded = encode_all(heter_strategy, partial_gradients)
        received = {0: coded[0]}
        with pytest.raises(DecodingError, match="cannot recover"):
            Decoder(heter_strategy).decode(received)

    def test_group_fast_path_used(self, example_throughputs, rng):
        strategy = group_based_strategy(
            example_throughputs, num_partitions=7, num_stragglers=1, rng=0
        )
        assert strategy.groups, "the example configuration should contain groups"
        decoder = Decoder(strategy)
        group = strategy.groups[0]
        result = decoder.decoding_vector(group)
        assert result is not None
        assert result.used_group == tuple(sorted(group))

    def test_decode_result_cached(self, heter_strategy):
        decoder = Decoder(heter_strategy)
        first = decoder.decoding_vector([1, 2, 3, 4])
        second = decoder.decoding_vector([4, 3, 2, 1])
        assert first is second  # cache keyed on the set of workers

    def test_earliest_decodable_prefix(self, heter_strategy):
        decoder = Decoder(heter_strategy)
        order = [4, 3, 2, 1, 0]
        prefix = decoder.earliest_decodable_prefix(order)
        assert prefix is not None
        assert decoder.can_decode(order[:prefix])
        if prefix > 1:
            assert not decoder.can_decode(order[: prefix - 1])

    def test_earliest_decodable_prefix_none_when_impossible(self, heter_strategy):
        decoder = Decoder(heter_strategy)
        assert decoder.earliest_decodable_prefix([0]) is None


class TestNaiveAndFractionalDecoding:
    def test_naive_requires_all_workers(self, rng):
        strategy = naive_strategy(4)
        gradients = rng.normal(size=(4, 6))
        coded = encode_all(strategy, gradients)
        decoder = Decoder(strategy)
        assert np.allclose(decoder.decode(coded), gradients.sum(axis=0))
        del coded[2]
        assert not decoder.can_decode(coded.keys())

    def test_fractional_group_decoding(self, rng):
        strategy = fractional_repetition_strategy(6, 2, 6)
        gradients = rng.normal(size=(6, 4))
        coded = encode_all(strategy, gradients)
        decoder = Decoder(strategy)
        # Any one replica group suffices.
        group = strategy.groups[0]
        received = {w: coded[w] for w in group}
        assert np.allclose(decoder.decode(received), gradients.sum(axis=0))


class TestBuildDecodingMatrix:
    def test_one_row_per_pattern(self, heter_strategy):
        matrix, patterns = build_decoding_matrix(heter_strategy)
        assert matrix.shape == (5, heter_strategy.num_workers)
        assert len(patterns) == 5

    def test_rows_decode_their_pattern(self, heter_strategy, partial_gradients):
        matrix, patterns = build_decoding_matrix(heter_strategy)
        expected = np.ones(heter_strategy.num_partitions)
        for row, pattern in zip(matrix, patterns):
            assert np.allclose(row @ heter_strategy.matrix, expected, atol=1e-6)
            # A pattern's row never uses a straggler's result.
            for straggler in pattern.stragglers:
                assert row[straggler] == pytest.approx(0.0, abs=1e-12)

    def test_raises_for_undecodable_strategy(self):
        strategy = naive_strategy(3)
        with pytest.raises(DecodingError):
            build_decoding_matrix(strategy, num_stragglers=1)


class TestDecodeGradientHelper:
    def test_matches_decoder(self, heter_strategy, partial_gradients):
        coded = encode_all(heter_strategy, partial_gradients)
        del coded[1]
        a = decode_gradient(heter_strategy, coded)
        b = Decoder(heter_strategy).decode(coded)
        assert np.allclose(a, b)

    def test_cyclic_decoding_with_tensor_gradients(self, rng):
        """Coded gradients can be arbitrary-shape arrays, not just vectors."""
        strategy = cyclic_strategy(5, 1, rng=0)
        gradients = rng.normal(size=(5, 3, 4))
        coded = {}
        for worker in range(5):
            support = list(strategy.support(worker))
            weights = strategy.row(worker)[support]
            coded[worker] = np.tensordot(weights, gradients[support], axes=1)
        del coded[3]
        recovered = decode_gradient(strategy, coded)
        assert recovered.shape == (3, 4)
        assert np.allclose(recovered, gradients.sum(axis=0), atol=1e-8)
