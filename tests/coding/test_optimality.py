"""Unit tests for repro.coding.optimality (Theorem 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding import (
    completion_time,
    cyclic_strategy,
    heterogeneity_aware_strategy,
    makespan_lower_bound,
    naive_strategy,
    optimality_report,
    worst_case_completion_time,
)
from repro.coding.types import CodingError


class TestMakespanLowerBound:
    def test_formula(self):
        # (s + 1) k / sum(c) = 2 * 14 / 14 = 2.
        assert makespan_lower_bound([1, 2, 3, 4, 4], 14, 1) == pytest.approx(2.0)

    def test_scales_with_s(self):
        low = makespan_lower_bound([1.0, 1.0], 4, 0)
        high = makespan_lower_bound([1.0, 1.0], 4, 1)
        assert high == pytest.approx(2 * low)

    def test_rejects_bad_inputs(self):
        with pytest.raises(CodingError):
            makespan_lower_bound([1.0, -1.0], 4, 1)
        with pytest.raises(CodingError):
            makespan_lower_bound([1.0, 1.0], 0, 1)
        with pytest.raises(CodingError):
            makespan_lower_bound([1.0, 1.0], 4, -1)


class TestCompletionTime:
    def test_no_stragglers_heter_aware(self, example_throughputs):
        strategy = heterogeneity_aware_strategy(
            example_throughputs, num_partitions=7, num_stragglers=1, rng=0
        )
        time = completion_time(strategy, example_throughputs, stragglers=())
        # Every worker finishes at exactly (s+1)k / sum(c) = 1.0 here.
        assert time == pytest.approx(1.0)

    def test_straggler_does_not_slow_heter_aware(self, example_throughputs):
        strategy = heterogeneity_aware_strategy(
            example_throughputs, num_partitions=7, num_stragglers=1, rng=0
        )
        for straggler in range(5):
            time = completion_time(strategy, example_throughputs, [straggler])
            assert time == pytest.approx(1.0)

    def test_naive_full_straggler_is_fatal(self):
        strategy = naive_strategy(4)
        with pytest.raises(CodingError):
            completion_time(strategy, [1.0] * 4, stragglers=[0])

    def test_cyclic_limited_by_slow_workers(self):
        throughputs = [1.0, 1.0, 4.0, 4.0]
        strategy = cyclic_strategy(4, 1, rng=0)
        # Each worker computes 2 partitions; dropping the slowest still
        # leaves the other 1-throughput worker on the critical path.
        time = completion_time(strategy, throughputs, stragglers=[0])
        assert time == pytest.approx(2.0)


class TestWorstCaseAndReport:
    def test_heter_aware_meets_lower_bound(self, example_throughputs):
        strategy = heterogeneity_aware_strategy(
            example_throughputs, num_partitions=7, num_stragglers=1, rng=0
        )
        report = optimality_report(strategy, example_throughputs)
        assert report.is_optimal
        assert report.ratio == pytest.approx(1.0)

    def test_cyclic_is_suboptimal_on_heterogeneous_cluster(self, example_throughputs):
        # k = 5 partitions so the uniform scheme is constructible.
        strategy = cyclic_strategy(5, 1, rng=0)
        report = optimality_report(strategy, example_throughputs)
        assert report.ratio > 1.5

    def test_worst_case_at_least_no_straggler_time(self, example_throughputs):
        strategy = heterogeneity_aware_strategy(
            example_throughputs, num_partitions=7, num_stragglers=1, rng=0
        )
        worst = worst_case_completion_time(strategy, example_throughputs)
        base = completion_time(strategy, example_throughputs, ())
        assert worst >= base - 1e-12

    def test_sampled_worst_case(self, example_throughputs):
        strategy = heterogeneity_aware_strategy(
            example_throughputs, num_partitions=7, num_stragglers=1, rng=0
        )
        sampled = worst_case_completion_time(
            strategy, example_throughputs, max_patterns=2, rng=0
        )
        exhaustive = worst_case_completion_time(strategy, example_throughputs)
        assert sampled <= exhaustive + 1e-12

    def test_report_rounding_tolerance(self):
        # With loads that cannot divide exactly, the ratio exceeds 1 but the
        # strategy is still within the quantisation gap.
        throughputs = [1.0, 1.7, 2.3]
        strategy = heterogeneity_aware_strategy(
            throughputs, num_partitions=5, num_stragglers=1, rng=0
        )
        report = optimality_report(strategy, throughputs, tolerance=0.5)
        assert report.ratio >= 1.0
        assert report.is_optimal  # within the generous tolerance
