"""Unit tests for repro.coding.types."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding.types import (
    AllocationError,
    CodingError,
    CodingStrategy,
    ConstructionError,
    PartitionAssignment,
    StragglerPattern,
)


def make_assignment() -> PartitionAssignment:
    return PartitionAssignment(
        num_workers=3,
        num_partitions=4,
        partitions_per_worker=((0, 1), (1, 2, 3), (0, 3)),
    )


class TestPartitionAssignment:
    def test_loads(self):
        assignment = make_assignment()
        assert assignment.loads == (2, 3, 2)

    def test_total_copies(self):
        assert make_assignment().total_copies == 7

    def test_workers_holding(self):
        assignment = make_assignment()
        assert assignment.workers_holding(0) == (0, 2)
        assert assignment.workers_holding(1) == (0, 1)
        assert assignment.workers_holding(3) == (1, 2)

    def test_workers_holding_out_of_range(self):
        with pytest.raises(AllocationError):
            make_assignment().workers_holding(4)
        with pytest.raises(AllocationError):
            make_assignment().workers_holding(-1)

    def test_replication_counts(self):
        counts = make_assignment().replication_counts()
        assert counts.tolist() == [2, 2, 1, 2]

    def test_min_replication(self):
        assert make_assignment().min_replication() == 1

    def test_support_matrix(self):
        support = make_assignment().support_matrix()
        expected = np.array(
            [
                [True, True, False, False],
                [False, True, True, True],
                [True, False, False, True],
            ]
        )
        assert np.array_equal(support, expected)

    def test_rejects_duplicate_partitions_per_worker(self):
        with pytest.raises(AllocationError, match="duplicate"):
            PartitionAssignment(
                num_workers=1,
                num_partitions=3,
                partitions_per_worker=((0, 0),),
            )

    def test_rejects_out_of_range_partition(self):
        with pytest.raises(AllocationError, match="out-of-range"):
            PartitionAssignment(
                num_workers=1,
                num_partitions=2,
                partitions_per_worker=((0, 2),),
            )

    def test_rejects_wrong_worker_count(self):
        with pytest.raises(AllocationError):
            PartitionAssignment(
                num_workers=2,
                num_partitions=2,
                partitions_per_worker=((0,),),
            )

    @pytest.mark.parametrize("workers,partitions", [(0, 1), (1, 0), (-1, 2)])
    def test_rejects_non_positive_sizes(self, workers, partitions):
        with pytest.raises(AllocationError):
            PartitionAssignment(
                num_workers=workers,
                num_partitions=partitions,
                partitions_per_worker=tuple(() for _ in range(max(workers, 0))),
            )


class TestStragglerPattern:
    def test_active_is_complement(self):
        pattern = StragglerPattern(stragglers=(1, 3), num_workers=5)
        assert pattern.active == (0, 2, 4)
        assert pattern.num_stragglers == 2

    def test_deduplicates_and_sorts(self):
        pattern = StragglerPattern(stragglers=(3, 1, 3), num_workers=5)
        assert pattern.stragglers == (1, 3)

    def test_from_active_roundtrip(self):
        pattern = StragglerPattern.from_active([0, 2, 4], num_workers=5)
        assert pattern.stragglers == (1, 3)

    def test_rejects_out_of_range(self):
        with pytest.raises(CodingError):
            StragglerPattern(stragglers=(5,), num_workers=5)

    def test_empty_pattern(self):
        pattern = StragglerPattern(stragglers=(), num_workers=3)
        assert pattern.active == (0, 1, 2)


class TestCodingStrategy:
    def _strategy(self) -> CodingStrategy:
        assignment = make_assignment()
        matrix = assignment.support_matrix().astype(float)
        return CodingStrategy(
            matrix=matrix,
            assignment=assignment,
            num_stragglers=0,
            scheme="test",
        )

    def test_dimensions(self):
        strategy = self._strategy()
        assert strategy.num_workers == 3
        assert strategy.num_partitions == 4
        assert strategy.loads == (2, 3, 2)

    def test_row_and_support(self):
        strategy = self._strategy()
        assert strategy.support(1) == (1, 2, 3)
        assert np.array_equal(strategy.row(1), np.array([0.0, 1.0, 1.0, 1.0]))

    def test_computation_times(self):
        strategy = self._strategy()
        times = strategy.computation_times([1.0, 3.0, 2.0])
        assert np.allclose(times, [2.0, 1.0, 1.0])

    def test_computation_times_rejects_bad_throughputs(self):
        strategy = self._strategy()
        with pytest.raises(CodingError):
            strategy.computation_times([1.0, 2.0])
        with pytest.raises(CodingError):
            strategy.computation_times([1.0, -1.0, 2.0])

    def test_rejects_matrix_outside_support(self):
        assignment = make_assignment()
        matrix = np.ones((3, 4))
        with pytest.raises(ConstructionError, match="outside"):
            CodingStrategy(
                matrix=matrix,
                assignment=assignment,
                num_stragglers=0,
                scheme="bad",
            )

    def test_rejects_shape_mismatch(self):
        assignment = make_assignment()
        with pytest.raises(ConstructionError):
            CodingStrategy(
                matrix=np.zeros((2, 4)),
                assignment=assignment,
                num_stragglers=0,
                scheme="bad",
            )
        with pytest.raises(ConstructionError):
            CodingStrategy(
                matrix=np.zeros((3, 5)),
                assignment=assignment,
                num_stragglers=0,
                scheme="bad",
            )

    def test_rejects_too_many_stragglers(self):
        assignment = make_assignment()
        matrix = assignment.support_matrix().astype(float)
        with pytest.raises(ConstructionError):
            CodingStrategy(
                matrix=matrix,
                assignment=assignment,
                num_stragglers=3,
                scheme="bad",
            )

    def test_describe_mentions_scheme(self):
        assert "test" in self._strategy().describe()
