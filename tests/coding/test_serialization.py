"""Unit tests for repro.coding.serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding import (
    Decoder,
    certify_robustness,
    group_based_strategy,
    heterogeneity_aware_strategy,
    load_strategy,
    save_strategy,
    strategy_from_dict,
    strategy_to_dict,
    worker_payload,
)
from repro.coding.types import CodingError


@pytest.fixture
def strategy(example_throughputs):
    return heterogeneity_aware_strategy(
        example_throughputs, num_partitions=7, num_stragglers=1, rng=0
    )


class TestDictRoundTrip:
    def test_matrix_preserved_exactly(self, strategy):
        rebuilt = strategy_from_dict(strategy_to_dict(strategy))
        assert np.array_equal(rebuilt.matrix, strategy.matrix)
        assert rebuilt.scheme == strategy.scheme
        assert rebuilt.num_stragglers == strategy.num_stragglers
        assert rebuilt.assignment.partitions_per_worker == (
            strategy.assignment.partitions_per_worker
        )

    def test_groups_preserved(self, example_throughputs):
        strategy = group_based_strategy(
            example_throughputs, num_partitions=7, num_stragglers=1, rng=0
        )
        rebuilt = strategy_from_dict(strategy_to_dict(strategy))
        assert rebuilt.groups == strategy.groups

    def test_rebuilt_strategy_still_robust_and_decodes(self, strategy, rng):
        rebuilt = strategy_from_dict(strategy_to_dict(strategy))
        assert certify_robustness(rebuilt).robust
        gradients = rng.normal(size=(7, 9))
        coded = {}
        for worker in range(5):
            support = list(rebuilt.support(worker))
            coded[worker] = rebuilt.row(worker)[support] @ gradients[support]
        del coded[2]
        recovered = Decoder(rebuilt).decode(coded)
        assert np.allclose(recovered, gradients.sum(axis=0), atol=1e-8)

    def test_numpy_metadata_serialisable(self, strategy):
        payload = strategy_to_dict(strategy)
        # The auxiliary matrix (a numpy array in metadata) must be plain lists.
        assert isinstance(payload["metadata"]["auxiliary_matrix"], list)

    def test_rejects_foreign_payload(self):
        with pytest.raises(CodingError):
            strategy_from_dict({"format": "something-else"})
        with pytest.raises(CodingError):
            strategy_from_dict(
                {"format": "repro.coding.strategy", "version": 999}
            )


class TestFileRoundTrip:
    def test_save_and_load(self, strategy, tmp_path):
        path = save_strategy(strategy, tmp_path / "strategy.json")
        assert path.exists()
        loaded = load_strategy(path)
        assert np.array_equal(loaded.matrix, strategy.matrix)
        assert loaded.loads == strategy.loads

    def test_save_creates_parent_directories(self, strategy, tmp_path):
        path = save_strategy(strategy, tmp_path / "nested" / "dir" / "s.json")
        assert path.exists()

    def test_file_is_valid_json(self, strategy, tmp_path):
        import json

        path = save_strategy(strategy, tmp_path / "strategy.json")
        with path.open() as handle:
            payload = json.load(handle)
        assert payload["scheme"] == "heter_aware"


class TestWorkerPayload:
    def test_contains_support_and_coefficients(self, strategy):
        payload = worker_payload(strategy, 3)
        assert payload["worker"] == 3
        assert payload["partitions"] == list(strategy.support(3))
        assert len(payload["coefficients"]) == len(payload["partitions"])
        expected = [strategy.row(3)[p] for p in strategy.support(3)]
        assert np.allclose(payload["coefficients"], expected)

    def test_out_of_range_worker(self, strategy):
        with pytest.raises(CodingError):
            worker_payload(strategy, 9)
