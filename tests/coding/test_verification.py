"""Unit tests for repro.coding.verification (Condition 1 checks)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding import (
    certify_robustness,
    cyclic_strategy,
    heterogeneity_aware_strategy,
    is_robust,
    iter_straggler_patterns,
    naive_strategy,
    solve_decoding_vector,
    spans_all_ones,
)
from repro.coding.types import CodingError


class TestSpansAllOnes:
    def test_identity_rows_span(self):
        assert spans_all_ones(np.eye(3))

    def test_single_all_ones_row(self):
        assert spans_all_ones(np.ones((1, 5)))

    def test_insufficient_rows(self):
        rows = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
        assert not spans_all_ones(rows)

    def test_empty_rows(self):
        assert not spans_all_ones(np.zeros((0, 4)))

    def test_solution_reconstructs_ones(self):
        rows = np.array([[2.0, 0.0, 1.0], [0.0, 1.0, 0.5], [1.0, 1.0, 1.0]])
        solution = solve_decoding_vector(rows)
        assert solution is not None
        assert np.allclose(solution @ rows, 1.0)

    def test_solution_none_when_impossible(self):
        rows = np.array([[1.0, 2.0, 3.0]])
        assert solve_decoding_vector(rows) is None


class TestIterStragglerPatterns:
    def test_exact_count(self):
        patterns = list(iter_straggler_patterns(5, 2))
        assert len(patterns) == 10
        assert all(p.num_stragglers == 2 for p in patterns)

    def test_inclusive_sizes(self):
        patterns = list(iter_straggler_patterns(4, 2, exact=False))
        # C(4,0) + C(4,1) + C(4,2) = 1 + 4 + 6
        assert len(patterns) == 11

    def test_zero_stragglers(self):
        patterns = list(iter_straggler_patterns(3, 0))
        assert len(patterns) == 1
        assert patterns[0].stragglers == ()


class TestCertifyRobustness:
    def test_heter_aware_is_robust(self, example_throughputs):
        strategy = heterogeneity_aware_strategy(
            example_throughputs, num_partitions=7, num_stragglers=1, rng=0
        )
        report = certify_robustness(strategy)
        assert report.robust
        assert report.exhaustive
        assert report.patterns_checked == 5
        assert report.failing_pattern is None

    def test_naive_is_not_robust_to_one_straggler(self):
        strategy = naive_strategy(4)
        report = certify_robustness(strategy, num_stragglers=1)
        assert not report.robust
        assert report.failing_pattern is not None

    def test_naive_is_robust_to_zero_stragglers(self):
        assert is_robust(naive_strategy(4), num_stragglers=0)

    def test_cyclic_robust_to_declared_but_not_more(self):
        strategy = cyclic_strategy(6, 2, rng=0)
        assert is_robust(strategy, num_stragglers=2)
        assert not is_robust(strategy, num_stragglers=3)

    def test_sampled_verification(self, example_throughputs):
        strategy = heterogeneity_aware_strategy(
            example_throughputs, num_partitions=7, num_stragglers=1, rng=0
        )
        report = certify_robustness(strategy, max_patterns=3, rng=0)
        assert report.robust
        assert not report.exhaustive
        assert report.patterns_checked == 3

    def test_s_geq_m_is_never_robust(self, example_throughputs):
        strategy = heterogeneity_aware_strategy(
            example_throughputs, num_partitions=7, num_stragglers=1, rng=0
        )
        report = certify_robustness(strategy, num_stragglers=5)
        assert not report.robust

    def test_negative_s_rejected(self, example_throughputs):
        strategy = heterogeneity_aware_strategy(
            example_throughputs, num_partitions=7, num_stragglers=1, rng=0
        )
        with pytest.raises(CodingError):
            certify_robustness(strategy, num_stragglers=-1)
