"""Unit tests for repro.coding.analysis."""

from __future__ import annotations

import pytest

from repro.coding import (
    StrategyAnalysis,
    analyze_strategy,
    cyclic_strategy,
    group_based_strategy,
    heterogeneity_aware_strategy,
    load_balance_index,
    naive_strategy,
)
from repro.coding.types import CodingError


class TestLoadBalanceIndex:
    def test_perfectly_proportional(self):
        assert load_balance_index([1, 2, 3], [1, 2, 3]) == pytest.approx(1.0)

    def test_uniform_loads_on_heterogeneous_workers(self):
        # Equal loads on 1x and 4x workers: the slow worker is 4x overloaded
        # relative to a proportional split.
        index = load_balance_index([2, 2], [1.0, 4.0])
        assert index == pytest.approx((4 / 5) / 2)

    def test_zero_loads(self):
        assert load_balance_index([0, 0], [1.0, 2.0]) == 1.0

    def test_bounds(self):
        index = load_balance_index([5, 1, 1], [1.0, 1.0, 1.0])
        assert 0.0 < index <= 1.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(CodingError):
            load_balance_index([1, 2], [1.0])
        with pytest.raises(CodingError):
            load_balance_index([1, 2], [1.0, -1.0])
        with pytest.raises(CodingError):
            load_balance_index([-1, 2], [1.0, 1.0])


class TestAnalyzeStrategy:
    def test_naive_baseline(self):
        analysis = analyze_strategy(naive_strategy(4))
        assert isinstance(analysis, StrategyAnalysis)
        assert analysis.replication_factor == pytest.approx(1.0)
        assert analysis.computation_overhead == pytest.approx(0.0)
        assert analysis.workers_needed_worst_case == 4
        assert analysis.num_groups == 0
        assert analysis.storage_fraction == pytest.approx(0.25)

    def test_cyclic_overhead_is_s(self):
        analysis = analyze_strategy(cyclic_strategy(6, 2, rng=0))
        assert analysis.replication_factor == pytest.approx(3.0)
        assert analysis.computation_overhead == pytest.approx(2.0)
        # The cyclic scheme needs m - s workers in the worst case.
        assert analysis.workers_needed_worst_case == 4

    def test_heter_aware_balance(self, example_throughputs):
        strategy = heterogeneity_aware_strategy(
            example_throughputs, num_partitions=14, num_stragglers=1, rng=0
        )
        analysis = analyze_strategy(strategy, example_throughputs)
        assert analysis.load_balance == pytest.approx(1.0)
        assert analysis.replication_factor == pytest.approx(2.0)

    def test_cyclic_balance_poor_on_heterogeneous_cluster(self, example_throughputs):
        strategy = cyclic_strategy(5, 1, rng=0)
        analysis = analyze_strategy(strategy, example_throughputs)
        assert analysis.load_balance < 0.5

    def test_group_based_best_case_smaller_than_worst(self, example_throughputs):
        strategy = group_based_strategy(
            example_throughputs, num_partitions=7, num_stragglers=1, rng=0
        )
        analysis = analyze_strategy(strategy, example_throughputs)
        assert analysis.num_groups >= 1
        assert analysis.workers_needed_best_case <= analysis.workers_needed_worst_case
        assert analysis.workers_needed_best_case <= min(
            len(group) for group in strategy.groups
        )

    def test_as_dict_round_trip(self, example_throughputs):
        strategy = heterogeneity_aware_strategy(
            example_throughputs, num_partitions=7, num_stragglers=1, rng=0
        )
        payload = analyze_strategy(strategy, example_throughputs).as_dict()
        assert payload["scheme"] == "heter_aware"
        assert payload["num_workers"] == 5
        assert set(payload) >= {
            "replication_factor",
            "load_balance",
            "workers_needed_worst_case",
        }
