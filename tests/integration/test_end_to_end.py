"""Integration tests across the whole stack.

These tests exercise the complete path the paper describes: allocate
partitions from throughput estimates, build the coding matrix, compute real
partial gradients with a numpy model, encode per worker, simulate straggling
workers, decode at the master, update the model, and verify both the
numerical exactness and the qualitative timing behaviour.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding import (
    Decoder,
    build_strategy,
    certify_robustness,
    makespan_lower_bound,
)
from repro.learning import (
    SGD,
    MLPClassifier,
    SoftmaxClassifier,
    compute_partial_gradients,
    encode_all_workers,
    full_gradient,
    make_blobs,
    make_cifar10_like,
    partition_dataset,
)
from repro.metrics import run_resource_usage, speedup_table, timing_stats
from repro.protocols import TrainingConfig, compare_schemes
from repro.simulation import (
    ArtificialDelay,
    FailStop,
    SimpleNetwork,
    ZeroCommunication,
    cluster_from_vcpu_counts,
    simulate_iteration,
)


@pytest.fixture(scope="module")
def cluster_a():
    return cluster_from_vcpu_counts(
        "Cluster-A", {2: 2, 4: 2, 8: 3, 12: 1}, rng=0
    )


class TestCodedTrainingEquivalence:
    """Coded BSP training is statistically identical to uncoded training."""

    def test_decoded_gradient_equals_full_gradient_for_every_scheme(self, cluster_a):
        dataset = make_blobs(num_samples=320, num_features=12, num_classes=5, rng=0)
        model = MLPClassifier(12, 5, hidden_sizes=(16,), rng=0)
        for scheme, k in (
            ("cyclic", 8),
            ("fractional", 8),
            ("heter_aware", 16),
            ("group_based", 16),
        ):
            partitioned = partition_dataset(dataset, k, rng=0)
            strategy = build_strategy(
                scheme,
                throughputs=cluster_a.estimated_throughputs,
                num_partitions=k,
                num_stragglers=1,
                rng=0,
            )
            partial = compute_partial_gradients(model, partitioned)
            coded = encode_all_workers(strategy, partial)
            expected = full_gradient(model, partitioned)
            decoder = Decoder(strategy)
            for straggler in range(cluster_a.num_workers):
                received = {w: g for w, g in coded.items() if w != straggler}
                recovered = decoder.decode(received)
                scale = max(1.0, float(np.abs(expected).max()))
                assert np.allclose(recovered, expected, atol=1e-6 * scale), scheme

    def test_coded_and_sequential_training_produce_same_model(self, cluster_a):
        """The full protocol's parameter trajectory equals centralised SGD."""
        dataset = make_blobs(num_samples=320, num_features=10, num_classes=4, rng=1)
        config = TrainingConfig(
            num_iterations=5,
            num_stragglers=1,
            optimizer_factory=lambda: SGD(0.2),
            network=ZeroCommunication(),
            seed=0,
        )
        # Distributed coded run.
        coded_model_factory = lambda: SoftmaxClassifier(10, 4, rng=0)
        traces = compare_schemes(
            ["heter_aware"], coded_model_factory, dataset, cluster_a, config
        )
        assert traces["heter_aware"].completed

        # Centralised run applying the same full-batch gradients on the same
        # partitioned subset of the data.
        partitioned = partition_dataset(
            dataset, 2 * cluster_a.num_workers, rng=config.seed
        )
        central = SoftmaxClassifier(10, 4, rng=0)
        optimizer = SGD(0.2)
        theta = central.parameters()
        for _ in range(5):
            grad = full_gradient(central, partitioned) / partitioned.samples_used
            theta = optimizer.step(theta, grad)
            central.set_parameters(theta)

        distributed = coded_model_factory()
        # Re-run to grab the final parameters (compare_schemes built its own).
        from repro.protocols import CodedBSPProtocol

        CodedBSPProtocol(scheme="heter_aware").run(
            distributed, partitioned, cluster_a, config
        )
        assert np.allclose(distributed.parameters(), central.parameters(), atol=1e-8)


class TestStragglerToleranceEndToEnd:
    def test_every_scheme_certified_on_cluster_a(self, cluster_a):
        for scheme, k in (
            ("cyclic", 8),
            ("heter_aware", 16),
            ("group_based", 16),
        ):
            strategy = build_strategy(
                scheme,
                throughputs=cluster_a.estimated_throughputs,
                num_partitions=k,
                num_stragglers=2,
                rng=0,
            )
            assert certify_robustness(strategy, max_patterns=15, rng=0).robust, scheme

    def test_fault_tolerance_in_simulation(self, cluster_a):
        strategy = build_strategy(
            "heter_aware",
            throughputs=cluster_a.estimated_throughputs,
            num_partitions=16,
            num_stragglers=1,
            rng=0,
        )
        timing = simulate_iteration(
            strategy,
            cluster_a,
            samples_per_partition=64,
            injector=FailStop({7: 0}),
            network=ZeroCommunication(),
            rng=0,
        )
        assert timing.decodable
        assert 7 not in timing.workers_used


class TestPaperHeadlineClaims:
    """End-to-end checks of the paper's qualitative claims."""

    def test_heter_aware_meets_theorem5_bound_on_cluster_a(self, cluster_a):
        throughputs = cluster_a.estimated_throughputs
        strategy = build_strategy(
            "heter_aware",
            throughputs=throughputs,
            num_partitions=32,
            num_stragglers=1,
            rng=0,
        )
        bound = makespan_lower_bound(throughputs, 32, 1)
        times = strategy.computation_times(throughputs)
        # Worst worker within one partition's cost of the bound.
        assert times.max() <= bound + 1.0 / throughputs.min() + 1e-9

    def test_speedup_over_cyclic_under_faults(self, cluster_a):
        """Heter-aware is substantially faster than cyclic when a worker faults."""
        dataset = make_blobs(num_samples=640, num_features=8, num_classes=4, rng=0)
        config = TrainingConfig(
            num_iterations=4,
            num_stragglers=1,
            optimizer_factory=lambda: SGD(0.1),
            straggler_injector=ArtificialDelay(1, float("inf")),
            network=SimpleNetwork(),
            seed=0,
            loss_eval_samples=128,
        )
        traces = compare_schemes(
            ["cyclic", "heter_aware", "group_based"],
            lambda: SoftmaxClassifier(8, 4, rng=0),
            dataset,
            cluster_a,
            config,
        )
        speedups = speedup_table(traces, baseline="cyclic")
        assert speedups["heter_aware"] > 1.5
        assert speedups["group_based"] > 1.5

    def test_resource_usage_ordering(self, cluster_a):
        """Fig. 5 ordering: naive lowest, heter-aware family highest."""
        dataset = make_blobs(num_samples=640, num_features=8, num_classes=4, rng=0)
        config = TrainingConfig(
            num_iterations=4,
            num_stragglers=1,
            optimizer_factory=lambda: SGD(0.1),
            network=SimpleNetwork(),
            seed=0,
            loss_eval_samples=128,
        )
        traces = compare_schemes(
            ["naive", "heter_aware"],
            lambda: SoftmaxClassifier(8, 4, rng=0),
            dataset,
            cluster_a,
            config,
        )
        assert run_resource_usage(traces["naive"]) < run_resource_usage(
            traces["heter_aware"]
        )

    def test_loss_per_wallclock_ordering(self, cluster_a):
        """At a common deadline, heter-aware has made at least as much progress."""
        from repro.metrics import loss_at_time

        dataset = make_blobs(num_samples=640, num_features=8, num_classes=4, rng=0)
        config = TrainingConfig(
            num_iterations=6,
            num_stragglers=1,
            optimizer_factory=lambda: SGD(0.2),
            network=SimpleNetwork(),
            seed=0,
            loss_eval_samples=128,
        )
        traces = compare_schemes(
            ["naive", "heter_aware"],
            lambda: SoftmaxClassifier(8, 4, rng=0),
            dataset,
            cluster_a,
            config,
        )
        deadline = min(trace.total_time for trace in traces.values())
        naive_loss = loss_at_time(traces["naive"], deadline)
        heter_loss = loss_at_time(traces["heter_aware"], deadline)
        assert heter_loss <= naive_loss + 1e-9


class TestImageWorkloadEndToEnd:
    def test_cifar_like_mlp_coded_training(self, cluster_a):
        """A small CIFAR-like workload trains end to end under coding."""
        dataset = make_cifar10_like(num_samples=160, rng=0)
        config = TrainingConfig(
            num_iterations=3,
            num_stragglers=1,
            optimizer_factory=lambda: SGD(0.05),
            network=SimpleNetwork(),
            seed=0,
            loss_eval_samples=64,
        )
        traces = compare_schemes(
            ["heter_aware"],
            lambda: MLPClassifier(dataset.num_features, 10, hidden_sizes=(32,), rng=0),
            dataset,
            cluster_a,
            config,
        )
        trace = traces["heter_aware"]
        assert trace.completed
        assert timing_stats(trace).mean > 0
        assert np.isfinite(trace.losses).all()
