"""Unit tests for straggler injectors and communication models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.network import (
    NetworkError,
    OverlappedNetwork,
    SimpleNetwork,
    ZeroCommunication,
)
from repro.simulation.stragglers import (
    ArtificialDelay,
    BurstyStragglers,
    CompositeInjector,
    FailStop,
    NoStragglers,
    StragglerError,
    TransientSlowdown,
)


class TestNoStragglers:
    def test_all_zero(self, rng):
        delays = NoStragglers().delays(0, 5, rng)
        assert np.allclose(delays, 0.0)


class TestArtificialDelay:
    def test_exactly_s_workers_delayed(self, rng):
        injector = ArtificialDelay(num_stragglers=2, delay_seconds=3.0)
        delays = injector.delays(0, 8, rng)
        assert np.sum(delays == 3.0) == 2
        assert np.sum(delays == 0.0) == 6

    def test_fault_delay_is_infinite(self, rng):
        injector = ArtificialDelay(num_stragglers=1, delay_seconds=np.inf)
        delays = injector.delays(0, 4, rng)
        assert np.sum(np.isinf(delays)) == 1

    def test_fixed_worker_set(self, rng):
        injector = ArtificialDelay(num_stragglers=2, delay_seconds=1.0, workers=(1, 3))
        delays = injector.delays(0, 5, rng)
        assert delays[1] == 1.0 and delays[3] == 1.0
        assert delays[0] == 0.0

    def test_workers_change_between_iterations(self):
        injector = ArtificialDelay(num_stragglers=1, delay_seconds=1.0)
        rng = np.random.default_rng(0)
        chosen = {
            int(np.argmax(injector.delays(i, 10, rng))) for i in range(30)
        }
        assert len(chosen) > 1  # random choice, not always the same worker

    def test_zero_stragglers(self, rng):
        injector = ArtificialDelay(num_stragglers=0, delay_seconds=5.0)
        assert np.allclose(injector.delays(0, 4, rng), 0.0)

    def test_more_stragglers_than_workers_rejected(self, rng):
        # Silently clamping used to hide misconfigured sweeps; the injector
        # now refuses with a clear error (StragglerError is a ValueError)
        # instead of numpy's opaque choice() failure.
        injector = ArtificialDelay(num_stragglers=10, delay_seconds=1.0)
        with pytest.raises(ValueError, match="num_stragglers must not exceed"):
            injector.delays(0, 3, rng)
        with pytest.raises(ValueError, match="num_stragglers must not exceed"):
            injector.delays_batch(0, 4, 3, rng)

    def test_describe_mentions_fault(self):
        assert "fault" in ArtificialDelay(1, np.inf).describe()

    def test_rejects_bad_args(self):
        with pytest.raises(StragglerError):
            ArtificialDelay(-1, 1.0)
        with pytest.raises(StragglerError):
            ArtificialDelay(1, -1.0)
        with pytest.raises(StragglerError):
            ArtificialDelay(3, 1.0, workers=(0, 1))


class TestTransientSlowdown:
    def test_probability_zero_never_delays(self, rng):
        injector = TransientSlowdown(probability=0.0, mean_delay_seconds=2.0)
        assert np.allclose(injector.delays(0, 10, rng), 0.0)

    def test_probability_one_always_delays(self, rng):
        injector = TransientSlowdown(probability=1.0, mean_delay_seconds=2.0)
        assert np.all(injector.delays(0, 10, rng) > 0.0)

    def test_average_rate_matches_probability(self):
        injector = TransientSlowdown(probability=0.3, mean_delay_seconds=1.0)
        rng = np.random.default_rng(0)
        hits = np.mean(
            [np.mean(injector.delays(i, 100, rng) > 0) for i in range(50)]
        )
        assert hits == pytest.approx(0.3, abs=0.05)

    def test_rejects_bad_args(self):
        with pytest.raises(StragglerError):
            TransientSlowdown(probability=1.5, mean_delay_seconds=1.0)
        with pytest.raises(StragglerError):
            TransientSlowdown(probability=0.5, mean_delay_seconds=-1.0)


class TestBurstyStragglers:
    def test_all_healthy_with_zero_enter_probability(self, rng):
        injector = BurstyStragglers(enter_probability=0.0, exit_probability=0.5)
        for iteration in range(5):
            assert np.allclose(injector.delays(iteration, 6, rng), 0.0)

    def test_all_degraded_with_certain_entry_and_no_exit(self, rng):
        injector = BurstyStragglers(
            enter_probability=1.0, exit_probability=0.0, mean_delay_seconds=2.0
        )
        first = injector.delays(0, 6, rng)
        second = injector.delays(1, 6, rng)
        assert np.all(first > 0)
        assert np.all(second > 0)

    def test_bursts_are_temporally_correlated(self):
        injector = BurstyStragglers(
            enter_probability=0.1, exit_probability=0.1, mean_delay_seconds=1.0
        )
        rng = np.random.default_rng(0)
        history = np.array(
            [injector.delays(i, 20, rng) > 0 for i in range(200)]
        )
        # A degraded worker tends to stay degraded: the probability of being
        # degraded at t+1 given degraded at t should exceed the marginal rate.
        degraded_now = history[:-1]
        degraded_next = history[1:]
        joint = np.mean(degraded_next[degraded_now]) if degraded_now.any() else 0.0
        marginal = history.mean()
        assert joint > marginal

    def test_reset_clears_state(self):
        injector = BurstyStragglers(enter_probability=1.0, exit_probability=0.0)
        rng = np.random.default_rng(0)
        injector.delays(0, 4, rng)
        injector.reset()
        assert injector._degraded is None

    def test_describe(self):
        assert "Bursty" in BurstyStragglers().describe()

    def test_rejects_bad_parameters(self):
        with pytest.raises(StragglerError):
            BurstyStragglers(enter_probability=1.5)
        with pytest.raises(StragglerError):
            BurstyStragglers(exit_probability=-0.1)
        with pytest.raises(StragglerError):
            BurstyStragglers(mean_delay_seconds=-1.0)


class TestFailStop:
    def test_failure_starts_at_given_iteration(self, rng):
        injector = FailStop({2: 5})
        assert injector.delays(4, 4, rng)[2] == 0.0
        assert np.isinf(injector.delays(5, 4, rng)[2])
        assert np.isinf(injector.delays(9, 4, rng)[2])

    def test_out_of_range_worker_ignored(self, rng):
        injector = FailStop({10: 0})
        assert np.all(np.isfinite(injector.delays(3, 4, rng)))

    def test_rejects_negative_keys(self):
        with pytest.raises(StragglerError):
            FailStop({-1: 0})
        with pytest.raises(StragglerError):
            FailStop({0: -2})


class TestCompositeInjector:
    def test_sums_delays(self, rng):
        composite = CompositeInjector(
            [
                ArtificialDelay(1, 2.0, workers=(0,)),
                ArtificialDelay(1, 3.0, workers=(0,)),
            ]
        )
        delays = composite.delays(0, 3, rng)
        assert delays[0] == pytest.approx(5.0)

    def test_infinite_dominates(self, rng):
        composite = CompositeInjector(
            [ArtificialDelay(1, np.inf, workers=(1,)), NoStragglers()]
        )
        assert np.isinf(composite.delays(0, 3, rng)[1])

    def test_describe_lists_members(self):
        composite = CompositeInjector([NoStragglers(), FailStop({0: 1})])
        text = composite.describe()
        assert "NoStragglers" in text and "FailStop" in text


class TestCommunicationModels:
    def test_zero_communication(self):
        assert ZeroCommunication().transfer_time(1e9) == 0.0

    def test_zero_communication_rejects_negative(self):
        with pytest.raises(NetworkError):
            ZeroCommunication().transfer_time(-1)

    def test_simple_network_formula(self):
        network = SimpleNetwork(latency_seconds=0.01, bandwidth_bytes_per_second=1e6)
        assert network.transfer_time(2e6) == pytest.approx(2.01)

    def test_simple_network_zero_payload_is_latency(self):
        network = SimpleNetwork(latency_seconds=0.02, bandwidth_bytes_per_second=1e6)
        assert network.transfer_time(0) == pytest.approx(0.02)

    def test_simple_network_rejects_bad_config(self):
        with pytest.raises(NetworkError):
            SimpleNetwork(latency_seconds=-0.1)
        with pytest.raises(NetworkError):
            SimpleNetwork(bandwidth_bytes_per_second=0)

    def test_describe(self):
        assert "ms" in SimpleNetwork().describe()

    def test_overlapped_network_scales_transfer_time(self):
        base = SimpleNetwork(latency_seconds=0.0, bandwidth_bytes_per_second=1e6)
        overlapped = OverlappedNetwork(base=base, overlap_fraction=0.75)
        assert overlapped.transfer_time(1e6) == pytest.approx(0.25)

    def test_overlapped_network_extremes(self):
        base = SimpleNetwork(latency_seconds=0.1, bandwidth_bytes_per_second=1e9)
        assert OverlappedNetwork(base, 0.0).transfer_time(0) == pytest.approx(
            base.transfer_time(0)
        )
        assert OverlappedNetwork(base, 1.0).transfer_time(1e9) == 0.0

    def test_overlapped_network_rejects_bad_fraction(self):
        with pytest.raises(NetworkError):
            OverlappedNetwork(SimpleNetwork(), overlap_fraction=1.5)

    def test_overlapped_network_describe(self):
        text = OverlappedNetwork(SimpleNetwork(), 0.5).describe()
        assert "overlap" in text and "50%" in text
