"""Tests for the whole-trace ``delays_batch`` injector API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.stragglers import (
    ArtificialDelay,
    BurstyStragglers,
    CompositeInjector,
    FailStop,
    NoStragglers,
    StragglerInjector,
    TransientSlowdown,
)


class LoopOnlyInjector(StragglerInjector):
    """Third-party-style injector implementing only the per-iteration API."""

    def delays(self, iteration, num_workers, rng):
        return np.full(num_workers, float(iteration)) + rng.random(num_workers)


class TestGenericFallback:
    def test_fallback_matches_per_iteration_loop_bitwise(self):
        injector = LoopOnlyInjector()
        batch = injector.delays_batch(3, 5, 4, np.random.default_rng(0))
        rng = np.random.default_rng(0)
        loop = np.stack([injector.delays(3 + i, 4, rng) for i in range(5)])
        assert np.array_equal(batch, loop)

    def test_fallback_checks_row_shape(self):
        class Broken(StragglerInjector):
            def delays(self, iteration, num_workers, rng):
                return np.zeros(num_workers + 1)

        with pytest.raises(ValueError, match="returned shape"):
            Broken().delays_batch(0, 2, 4, np.random.default_rng(0))

    def test_stateful_bursty_uses_fallback_consistently(self):
        batch = BurstyStragglers(0.5, 0.2, 1.0)
        loop = BurstyStragglers(0.5, 0.2, 1.0)
        batched = batch.delays_batch(0, 20, 6, np.random.default_rng(1))
        rng = np.random.default_rng(1)
        looped = np.stack([loop.delays(i, 6, rng) for i in range(20)])
        assert np.array_equal(batched, looped)


class TestNoStragglersBatch:
    def test_zeros(self):
        batch = NoStragglers().delays_batch(0, 7, 3, np.random.default_rng(0))
        assert batch.shape == (7, 3)
        assert np.all(batch == 0.0)


class TestArtificialDelayBatch:
    def test_shape_and_count_per_row(self):
        injector = ArtificialDelay(2, 1.5)
        batch = injector.delays_batch(0, 50, 6, np.random.default_rng(0))
        assert batch.shape == (50, 6)
        assert np.all((batch == 0.0) | (batch == 1.5))
        assert np.all((batch > 0).sum(axis=1) == 2)

    def test_single_straggler_rows(self):
        injector = ArtificialDelay(1, np.inf)
        batch = injector.delays_batch(0, 40, 5, np.random.default_rng(0))
        assert np.all(np.isinf(batch).sum(axis=1) == 1)

    def test_fixed_workers(self):
        injector = ArtificialDelay(2, 3.0, workers=(1, 3))
        batch = injector.delays_batch(0, 4, 5, np.random.default_rng(0))
        expected = np.zeros((4, 5))
        expected[:, [1, 3]] = 3.0
        assert np.array_equal(batch, expected)

    def test_all_workers_eventually_chosen(self):
        injector = ArtificialDelay(2, 1.0)
        batch = injector.delays_batch(0, 400, 6, np.random.default_rng(0))
        assert np.all((batch > 0).any(axis=0))

    def test_subset_choice_is_uniform_ish(self):
        # Every worker should be hit roughly n * s / m times.
        n, m, s = 6000, 6, 2
        batch = ArtificialDelay(s, 1.0).delays_batch(
            0, n, m, np.random.default_rng(0)
        )
        counts = (batch > 0).sum(axis=0)
        expected = n * s / m
        assert np.all(np.abs(counts - expected) < 0.1 * expected)

    def test_zero_stragglers_and_zero_delay(self):
        rng = np.random.default_rng(0)
        assert np.all(ArtificialDelay(0, 5.0).delays_batch(0, 3, 4, rng) == 0)
        assert np.all(ArtificialDelay(2, 0.0).delays_batch(0, 3, 4, rng) == 0)

    def test_too_many_stragglers_raises_clear_error(self):
        injector = ArtificialDelay(9, 1.0)
        with pytest.raises(ValueError, match="cluster of 4"):
            injector.delays_batch(0, 2, 4, np.random.default_rng(0))


class TestTransientSlowdownBatch:
    def test_shape_and_distribution(self):
        injector = TransientSlowdown(0.3, 2.0)
        batch = injector.delays_batch(0, 4000, 5, np.random.default_rng(0))
        assert batch.shape == (4000, 5)
        hit_rate = (batch > 0).mean()
        assert abs(hit_rate - 0.3) < 0.02
        assert abs(batch[batch > 0].mean() - 2.0) < 0.15

    def test_deterministic_in_rng(self):
        injector = TransientSlowdown(0.3, 2.0)
        a = injector.delays_batch(0, 10, 5, np.random.default_rng(3))
        b = injector.delays_batch(0, 10, 5, np.random.default_rng(3))
        assert np.array_equal(a, b)


class TestFailStopBatch:
    def test_matches_per_iteration_exactly(self):
        injector = FailStop({0: 2, 3: 0})
        batch = injector.delays_batch(0, 5, 4, np.random.default_rng(0))
        rng = np.random.default_rng(0)
        loop = np.stack([injector.delays(i, 4, rng) for i in range(5)])
        assert np.array_equal(batch, loop)

    def test_start_iteration_offset(self):
        injector = FailStop({1: 10})
        batch = injector.delays_batch(8, 4, 3, np.random.default_rng(0))
        assert not np.isinf(batch[0]).any()  # iteration 8
        assert not np.isinf(batch[1]).any()  # iteration 9
        assert np.isinf(batch[2, 1]) and np.isinf(batch[3, 1])  # 10, 11


class TestCompositeBatch:
    def test_sums_children(self):
        injector = CompositeInjector(
            [ArtificialDelay(1, 2.0, workers=(0,)), FailStop({2: 0})]
        )
        batch = injector.delays_batch(0, 3, 4, np.random.default_rng(0))
        assert np.all(batch[:, 0] == 2.0)
        assert np.all(np.isinf(batch[:, 2]))
        assert np.all(batch[:, [1, 3]] == 0.0)
