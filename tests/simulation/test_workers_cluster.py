"""Unit tests for worker specs and cluster construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.cluster import (
    ClusterError,
    ClusterSpec,
    cluster_from_vcpu_counts,
    uniform_cluster,
)
from repro.simulation.workers import WorkerError, WorkerSpec, perturb_estimates


class TestWorkerSpec:
    def test_defaults_estimate_to_truth(self):
        worker = WorkerSpec(worker_id=0, vcpus=4, true_throughput=200.0)
        assert worker.estimated_throughput == 200.0

    def test_compute_time_without_noise(self):
        worker = WorkerSpec(
            worker_id=0, vcpus=2, true_throughput=100.0, compute_noise=0.0
        )
        assert worker.compute_time(250) == pytest.approx(2.5)

    def test_compute_time_zero_samples(self, rng):
        worker = WorkerSpec(worker_id=0, vcpus=2, true_throughput=100.0)
        assert worker.compute_time(0, rng=rng) == 0.0

    def test_compute_time_with_noise_close_to_nominal(self):
        worker = WorkerSpec(
            worker_id=0, vcpus=2, true_throughput=100.0, compute_noise=0.05
        )
        rng = np.random.default_rng(0)
        samples = [worker.compute_time(100, rng=rng) for _ in range(200)]
        assert np.mean(samples) == pytest.approx(1.0, rel=0.05)
        assert np.std(samples) > 0

    def test_with_estimate(self):
        worker = WorkerSpec(worker_id=1, vcpus=2, true_throughput=100.0)
        updated = worker.with_estimate(80.0)
        assert updated.estimated_throughput == 80.0
        assert updated.true_throughput == 100.0
        assert worker.estimated_throughput == 100.0  # original untouched

    def test_rejects_invalid_fields(self):
        with pytest.raises(WorkerError):
            WorkerSpec(worker_id=-1, vcpus=2, true_throughput=1.0)
        with pytest.raises(WorkerError):
            WorkerSpec(worker_id=0, vcpus=0, true_throughput=1.0)
        with pytest.raises(WorkerError):
            WorkerSpec(worker_id=0, vcpus=2, true_throughput=0.0)
        with pytest.raises(WorkerError):
            WorkerSpec(worker_id=0, vcpus=2, true_throughput=1.0, compute_noise=-1)

    def test_rejects_negative_samples(self):
        worker = WorkerSpec(worker_id=0, vcpus=2, true_throughput=100.0)
        with pytest.raises(WorkerError):
            worker.compute_time(-1)


class TestPerturbEstimates:
    def test_zero_error_is_identity(self):
        workers = [
            WorkerSpec(worker_id=i, vcpus=2, true_throughput=100.0) for i in range(3)
        ]
        perturbed = perturb_estimates(workers, relative_error=0.0, rng=0)
        assert all(
            w.estimated_throughput == w.true_throughput for w in perturbed
        )

    def test_error_changes_estimates_not_truth(self):
        workers = [
            WorkerSpec(worker_id=i, vcpus=2, true_throughput=100.0) for i in range(5)
        ]
        perturbed = perturb_estimates(workers, relative_error=0.3, rng=0)
        assert all(w.true_throughput == 100.0 for w in perturbed)
        assert any(w.estimated_throughput != 100.0 for w in perturbed)

    def test_rejects_negative_error(self):
        with pytest.raises(WorkerError):
            perturb_estimates([], relative_error=-0.1)


class TestClusterSpec:
    def test_throughput_arrays(self, small_cluster):
        assert np.allclose(
            small_cluster.true_throughputs, [100, 200, 300, 400, 400]
        )
        assert np.allclose(
            small_cluster.estimated_throughputs, small_cluster.true_throughputs
        )

    def test_heterogeneity_ratio(self, small_cluster):
        assert small_cluster.heterogeneity_ratio == pytest.approx(4.0)

    def test_describe_mentions_vcpu_counts(self, small_cluster):
        text = small_cluster.describe()
        assert "5 workers" in text
        assert "4-vCPU" in text

    def test_with_workers(self, small_cluster):
        new_workers = perturb_estimates(list(small_cluster.workers), 0.1, rng=0)
        updated = small_cluster.with_workers(new_workers)
        assert updated.name == small_cluster.name
        assert updated.num_workers == small_cluster.num_workers

    def test_rejects_misnumbered_workers(self):
        workers = (
            WorkerSpec(worker_id=1, vcpus=2, true_throughput=1.0),
        )
        with pytest.raises(ClusterError):
            ClusterSpec(name="bad", workers=workers)

    def test_rejects_empty(self):
        with pytest.raises(ClusterError):
            ClusterSpec(name="bad", workers=())


class TestClusterBuilders:
    def test_from_vcpu_counts_size_and_order(self):
        cluster = cluster_from_vcpu_counts(
            "test", {8: 2, 2: 1, 4: 1}, machine_spread=0.0, rng=0
        )
        assert cluster.num_workers == 4
        assert cluster.vcpu_counts == (2, 4, 8, 8)

    def test_throughput_proportional_to_vcpus_without_spread(self):
        cluster = cluster_from_vcpu_counts(
            "test", {2: 1, 8: 1}, samples_per_second_per_vcpu=10.0,
            machine_spread=0.0, rng=0,
        )
        assert cluster.true_throughputs.tolist() == [20.0, 80.0]

    def test_spread_is_deterministic_per_seed(self):
        a = cluster_from_vcpu_counts("t", {4: 3}, machine_spread=0.1, rng=5)
        b = cluster_from_vcpu_counts("t", {4: 3}, machine_spread=0.1, rng=5)
        assert np.allclose(a.true_throughputs, b.true_throughputs)

    def test_zero_count_entries_allowed(self):
        cluster = cluster_from_vcpu_counts("t", {2: 2, 16: 0}, rng=0)
        assert cluster.num_workers == 2

    def test_rejects_empty_mapping(self):
        with pytest.raises(ClusterError):
            cluster_from_vcpu_counts("t", {})

    def test_rejects_negative_count(self):
        with pytest.raises(ClusterError):
            cluster_from_vcpu_counts("t", {2: -1})

    def test_uniform_cluster(self):
        cluster = uniform_cluster("uniform", 6, samples_per_second=100.0)
        assert cluster.num_workers == 6
        assert cluster.heterogeneity_ratio == pytest.approx(1.0)

    def test_uniform_cluster_rejects_bad_args(self):
        with pytest.raises(ClusterError):
            uniform_cluster("u", 0)
        with pytest.raises(ClusterError):
            uniform_cluster("u", 2, samples_per_second=0.0)
