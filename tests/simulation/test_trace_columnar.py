"""Tests for the column-oriented RunTrace core (PR 4).

Locked-in guarantees:

* ``from_arrays`` → ``records`` view → ``to_dict`` round-trips losslessly,
  and the JSON is byte-identical to a trace built record by record;
* the ``records`` compatibility view is lazy and cached;
* ``durations``/``losses`` are served from cached columns and invalidated
  on ``append``/``extend`` (the PR 4 hot-path fix);
* the PR 3 unknown-key warning behaviour survives the columnar rewrite.
"""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro._reference import trace_from_arrays_records_reference
from repro.simulation.trace import (
    IterationRecord,
    RunTrace,
    TraceColumns,
    TraceError,
    UnknownTraceFieldWarning,
)
from repro.simulation.vectorized import TimingTraceArrays


def random_arrays(
    rng: np.random.Generator, n: int = 20, m: int = 5, stalled: bool = False
) -> TimingTraceArrays:
    durations = rng.uniform(0.5, 2.0, size=n)
    workers_used = []
    used_groups = []
    for step in range(n):
        used = tuple(
            int(w) for w in sorted(rng.choice(m, size=min(3, m), replace=False))
        )
        workers_used.append(used)
        used_groups.append(used[:2] if step % 3 == 0 else None)
    if stalled:
        durations[-1] = np.inf
        workers_used[-1] = ()
        used_groups[-1] = None
    return TimingTraceArrays(
        durations=durations,
        compute_times=rng.uniform(0.1, 1.0, size=(n, m)),
        completion_times=rng.uniform(0.2, 3.0, size=(n, m)),
        workers_used=tuple(workers_used),
        used_groups=tuple(used_groups),
    )


class TestFromArrays:
    def test_zero_record_construction(self):
        trace = RunTrace.from_arrays(
            "heter_aware", "Cluster-A", random_arrays(np.random.default_rng(0))
        )
        assert trace.num_iterations == 20
        assert trace._records_cache is None  # nothing materialized yet

    def test_records_view_is_lazy_and_cached(self):
        trace = RunTrace.from_arrays(
            "heter_aware", "Cluster-A", random_arrays(np.random.default_rng(1))
        )
        records = trace.records
        assert len(records) == 20
        assert all(isinstance(r, IterationRecord) for r in records)
        # Record objects are materialized once; only the list shell is new.
        assert trace.records[0] is records[0]

    def test_mutating_the_records_view_cannot_poison_the_trace(self):
        trace = RunTrace.from_arrays(
            "heter_aware", "Cluster-A",
            random_arrays(np.random.default_rng(14), n=4),
        )
        view = trace.records
        view.append(view[0])  # rogue external mutation
        view.pop(0)
        assert trace.num_iterations == 4
        assert len(trace.records) == 4
        assert len(trace.to_dict()["records"]) == 4

    def test_train_losses_column(self):
        arrays = random_arrays(np.random.default_rng(2), n=6)
        losses = np.linspace(2.0, 1.0, 6)
        trace = RunTrace.from_arrays(
            "cyclic", "c", arrays, train_losses=losses
        )
        assert np.allclose(trace.losses, losses)
        assert trace.records[3].train_loss == pytest.approx(losses[3])

    def test_train_losses_default_to_nan(self):
        trace = RunTrace.from_arrays(
            "cyclic", "c", random_arrays(np.random.default_rng(3), n=4)
        )
        assert np.all(np.isnan(trace.losses))

    def test_shape_mismatch_rejected(self):
        arrays = random_arrays(np.random.default_rng(4), n=5)
        with pytest.raises(TraceError):
            RunTrace.from_arrays("x", "y", arrays, train_losses=np.zeros(3))

    def test_start_iteration_offsets_indices(self):
        arrays = random_arrays(np.random.default_rng(5), n=4)
        trace = RunTrace.from_arrays("x", "y", arrays, start_iteration=10)
        assert [r.iteration for r in trace.records] == [10, 11, 12, 13]


class TestPropertyRoundTrip:
    """from_arrays -> records view -> to_dict round-trips losslessly."""

    @pytest.mark.parametrize("seed", range(8))
    def test_columnar_json_matches_record_built_json(self, seed):
        rng = np.random.default_rng(seed)
        arrays = random_arrays(rng, n=int(rng.integers(1, 40)), stalled=seed % 2 == 0)
        metadata = {"mode": "timing_only", "seed": seed, "nested": {"k": [1, 2]}}
        columnar = RunTrace.from_arrays(
            "heter_aware", "Cluster-A", arrays, metadata=dict(metadata)
        )
        record_built = trace_from_arrays_records_reference(
            "heter_aware", "Cluster-A", arrays, metadata=dict(metadata)
        )
        assert json.dumps(columnar.to_dict()) == json.dumps(record_built.to_dict())

    @pytest.mark.parametrize("seed", range(8))
    def test_round_trip_through_from_dict_is_lossless(self, seed):
        rng = np.random.default_rng(100 + seed)
        losses = rng.uniform(0.5, 3.0, size=12)
        trace = RunTrace.from_arrays(
            "group_based", "Cluster-B", random_arrays(rng, n=12),
            train_losses=losses, metadata={"custom": "survives"},
        )
        payload = trace.to_dict()
        with warnings.catch_warnings():
            warnings.simplefilter("error", UnknownTraceFieldWarning)
            rebuilt = RunTrace.from_dict(payload)
        assert json.dumps(rebuilt.to_dict()) == json.dumps(payload)
        assert rebuilt.metadata == trace.metadata
        # The record views agree field by field.
        for ours, theirs in zip(trace.records, rebuilt.records):
            assert ours == theirs

    def test_unknown_top_level_key_still_warns(self):
        trace = RunTrace.from_arrays(
            "naive", "c", random_arrays(np.random.default_rng(9), n=3)
        )
        payload = trace.to_dict()
        payload["telemetry"] = {"new": True}
        with pytest.warns(UnknownTraceFieldWarning, match="telemetry"):
            RunTrace.from_dict(payload)

    def test_unknown_record_key_still_warns(self):
        trace = RunTrace.from_arrays(
            "naive", "c", random_arrays(np.random.default_rng(10), n=3)
        )
        payload = trace.to_dict()
        payload["records"][0]["queue_depth"] = 4
        with pytest.warns(UnknownTraceFieldWarning, match="queue_depth"):
            RunTrace.from_dict(payload)

    def test_metadata_keys_are_exempt_from_warning(self):
        trace = RunTrace.from_arrays(
            "naive", "c", random_arrays(np.random.default_rng(11), n=3),
            metadata={"brand_new_diagnostic": 42},
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", UnknownTraceFieldWarning)
            rebuilt = RunTrace.from_dict(trace.to_dict())
        assert rebuilt.metadata["brand_new_diagnostic"] == 42


class TestColumnCaching:
    def test_durations_cached_until_append(self):
        trace = RunTrace(scheme="x", cluster_name="y")
        trace.append(self.record(0, duration=1.0))
        first = trace.durations
        assert trace.durations is first  # cached, not rebuilt per access
        trace.append(self.record(1, duration=2.0))
        second = trace.durations
        assert second is not first
        assert np.allclose(second, [1.0, 2.0])

    def test_extend_invalidates_and_elapsed_caches(self):
        trace = RunTrace(scheme="x", cluster_name="y")
        trace.extend([self.record(0), self.record(1)])
        elapsed = trace.elapsed_times
        assert trace.elapsed_times is elapsed
        trace.extend([self.record(2)])
        assert trace.elapsed_times.shape == (3,)

    def test_append_after_from_arrays(self):
        arrays = random_arrays(np.random.default_rng(12), n=5, m=2)
        trace = RunTrace.from_arrays("x", "y", arrays)
        trace.append(self.record(5, duration=9.0))
        assert trace.num_iterations == 6
        assert trace.durations[-1] == pytest.approx(9.0)
        assert trace.records[-1].iteration == 5
        with pytest.raises(TraceError):
            trace.append(self.record(5))

    def test_out_of_order_append_rejected_against_arrays_base(self):
        arrays = random_arrays(np.random.default_rng(13), n=5, m=2)
        trace = RunTrace.from_arrays("x", "y", arrays)
        with pytest.raises(TraceError):
            trace.append(self.record(2))

    def test_columns_arrays_are_read_only(self):
        trace = RunTrace(scheme="x", cluster_name="y")
        trace.append(self.record(0))
        with pytest.raises(ValueError):
            trace.durations[0] = 99.0

    @staticmethod
    def record(iteration: int, duration: float = 1.0) -> IterationRecord:
        return IterationRecord(
            iteration=iteration,
            duration=duration,
            train_loss=0.5,
            compute_times=(0.4, 0.6),
            completion_times=(0.5, 0.7),
            workers_used=(0, 1),
        )


class TestTraceColumns:
    def test_from_records_concatenate_round_trip(self):
        records = [TestColumnCaching.record(i, duration=float(i + 1)) for i in range(4)]
        columns = TraceColumns.from_records(records)
        assert columns.num_iterations == 4
        assert columns.num_workers == 2
        rebuilt = columns.materialize_records()
        assert rebuilt == records
        merged = TraceColumns.concatenate([columns, TraceColumns.empty()])
        assert merged.num_iterations == 4

    def test_empty_trace_columns(self):
        trace = RunTrace(scheme="x", cluster_name="y")
        columns = trace.columns()
        assert columns.num_iterations == 0
        assert trace.durations.size == 0
        assert trace.total_time == 0.0
