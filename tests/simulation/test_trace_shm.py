"""Shared-memory transport for trace columns: bit-exact, leak-free.

``TraceColumns``/``RaggedColumn`` round-trip through
``multiprocessing.shared_memory`` segments across every shape the figure
experiments produce — NaN canonical losses (timing-only runs), ``inf``
fail-stop durations, nullable ``used_groups`` masks, empty traces — and the
ownership contract holds: consuming a descriptor unlinks its segment, error
paths unlink too, and nothing survives in ``/dev/shm`` after a completed
round-trip.
"""

from __future__ import annotations

import gc
import os

import numpy as np
import pytest

from repro.simulation.trace import (
    RaggedColumn,
    RunTrace,
    ShmReader,
    ShmWriter,
    TraceColumns,
    TraceError,
    unlink_shm,
)

_SHM_DIR = "/dev/shm"


def shm_segments() -> set:
    if not os.path.isdir(_SHM_DIR):  # pragma: no cover - non-Linux fallback
        return set()
    return {name for name in os.listdir(_SHM_DIR) if name.startswith("psm_")}


@pytest.fixture(autouse=True)
def no_leaked_segments():
    before = shm_segments()
    yield
    gc.collect()
    leaked = shm_segments() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def assert_columns_equal(a: TraceColumns, b: TraceColumns) -> None:
    assert np.array_equal(a.iterations, b.iterations)
    assert np.array_equal(a.durations, b.durations)  # inf == inf exactly
    assert np.array_equal(a.train_losses, b.train_losses, equal_nan=True)
    assert np.array_equal(a.compute_times, b.compute_times)
    assert np.array_equal(a.completion_times, b.completion_times)
    assert a.workers_used.tuples() == b.workers_used.tuples()
    assert a.used_groups.tuples() == b.used_groups.tuples()


def figure_shape_columns() -> dict[str, TraceColumns]:
    """One ``TraceColumns`` per figure-experiment shape family."""
    rng = np.random.default_rng(7)
    n, m = 9, 4
    timing = TraceColumns(
        iterations=np.arange(n, dtype=np.int64),
        durations=rng.random(n),
        train_losses=np.full(n, np.nan),  # timing-only runs carry NaN losses
        compute_times=rng.random((n, m)),
        completion_times=rng.random((n, m)) + 1.0,
        workers_used=tuple(tuple(range(i % m + 1)) for i in range(n)),
        used_groups=tuple((i % 2,) for i in range(n)),
    )
    fail_stop = TraceColumns(
        iterations=np.arange(n, dtype=np.int64),
        durations=np.where(np.arange(n) % 3 == 0, np.inf, 2.0),
        train_losses=np.full(n, np.nan),
        compute_times=rng.random((n, m)),
        completion_times=np.where(rng.random((n, m)) < 0.3, np.inf, 1.0),
        workers_used=tuple(
            () if i % 3 == 0 else tuple(range(m)) for i in range(n)
        ),
        used_groups=tuple(None for _ in range(n)),
    )
    training = TraceColumns(
        iterations=np.arange(5, 5 + n, dtype=np.int64),  # offset start
        durations=rng.random(n),
        train_losses=rng.random(n),
        compute_times=rng.random((n, m)),
        completion_times=rng.random((n, m)),
        workers_used=tuple(tuple(range(m)) for _ in range(n)),
        used_groups=tuple((0,) if i % 2 else None for i in range(n)),  # nullable
    )
    return {
        "timing_nan_losses": timing,
        "fail_stop_inf": fail_stop,
        "training_nullable_groups": training,
        "empty": TraceColumns.empty(),
    }


class TestRaggedColumnShm:
    @pytest.mark.parametrize(
        "rows, nullable",
        [
            ([(0, 1, 2), (1,), (), (0, 1, 2)], False),
            ([(3,), None, (), None, (1, 2)], True),
            ([None, None], True),
            ([], False),
            ([()], False),
        ],
    )
    def test_round_trip_bit_identical(self, rows, nullable):
        column = RaggedColumn.from_rows(rows, nullable=nullable)
        restored = RaggedColumn.from_shm(column.to_shm())
        assert restored.tuples() == column.tuples()
        assert np.array_equal(restored.offsets, column.offsets)
        assert np.array_equal(restored.values, column.values)
        if column.present is None:
            assert restored.present is None
        else:
            assert np.array_equal(restored.present, column.present)

    def test_attached_arrays_read_only(self):
        column = RaggedColumn.from_rows([(1, 2), (3,)])
        restored = RaggedColumn.from_shm(column.to_shm())
        assert not restored.offsets.flags.writeable
        assert not restored.values.flags.writeable

    def test_consume_false_allows_second_consumer(self):
        column = RaggedColumn.from_rows([(1, 2, 3)])
        descriptor = column.to_shm()
        first = RaggedColumn.from_shm(descriptor, consume=False)
        second = RaggedColumn.from_shm(descriptor)  # consumes
        assert first.tuples() == second.tuples() == column.tuples()

    def test_unlink_shm_discards_unconsumed_descriptor(self):
        descriptor = RaggedColumn.from_rows([(1,)]).to_shm()
        unlink_shm(descriptor)
        unlink_shm(descriptor)  # idempotent on already-gone segments


class TestTraceColumnsShm:
    @pytest.mark.parametrize("shape", sorted(figure_shape_columns()))
    def test_round_trip_bit_identical(self, shape):
        columns = figure_shape_columns()[shape]
        restored = TraceColumns.from_shm(columns.to_shm())
        assert_columns_equal(columns, restored)

    def test_arrays_survive_consume_and_gc(self):
        columns = figure_shape_columns()["training_nullable_groups"]
        restored = TraceColumns.from_shm(columns.to_shm())
        gc.collect()  # segment unlinked; pages must outlive it via the views
        assert_columns_equal(columns, restored)

    def test_shared_writer_packs_many_blocks_in_one_segment(self):
        blocks = [
            figure_shape_columns()["timing_nan_losses"],
            figure_shape_columns()["fail_stop_inf"],
            figure_shape_columns()["empty"],
        ]
        writer = ShmWriter()
        descriptors = [block.shm_export(writer) for block in blocks]
        segment, nbytes = writer.create()
        reader = ShmReader(segment)
        try:
            restored = [
                TraceColumns.shm_attach(reader, descriptor)
                for descriptor in descriptors
            ]
        finally:
            reader.consume()
        for block, copy in zip(blocks, restored, strict=True):
            assert_columns_equal(block, copy)

    def test_reader_rejects_use_after_consume(self):
        descriptor = figure_shape_columns()["empty"].to_shm()
        reader = ShmReader(descriptor["segment"])
        reader.consume()
        with pytest.raises(TraceError, match="after consume"):
            reader.array({"offset": 0, "shape": [0], "dtype": "<f8"})
        reader.consume()  # idempotent

    def test_round_trip_preserves_json_serialisation(self):
        columns = figure_shape_columns()["training_nullable_groups"]
        trace = RunTrace.from_columns("ssp", "Cluster-A", columns, {"seed": 5})
        restored = RunTrace.from_columns(
            "ssp",
            "Cluster-A",
            TraceColumns.from_shm(columns.to_shm()),
            {"seed": 5},
        )
        assert restored == trace
        assert restored.to_dict() == trace.to_dict()


class TestRunTraceFromColumns:
    def test_preserves_exact_iteration_numbering(self):
        columns = figure_shape_columns()["training_nullable_groups"]
        trace = RunTrace.from_columns("ssp", "Cluster-A", columns)
        assert trace.num_iterations == columns.num_iterations
        assert np.array_equal(trace.columns().iterations, columns.iterations)
        # appending must continue from the preserved numbering
        assert trace._last_iteration == int(columns.iterations[-1])

    def test_empty_columns(self):
        trace = RunTrace.from_columns("naive", "Cluster-A", TraceColumns.empty())
        assert trace.num_iterations == 0
        assert trace._last_iteration is None
