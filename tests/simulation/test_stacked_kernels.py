"""Bit-identity of the run-stacked kernels against their per-run paths.

The PR 7 contract: stacking many runs into one numpy call must change
*nothing* about any individual run.  Every ``*_stacked`` kernel is pinned
here against the standalone path it replaces — per-run generators spawned
from the same seeds, outputs compared exactly (``inf`` rows included) —
for every registered straggler model and every Table II cluster.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.builders import build_injector
from repro.api.spec import StragglerSpec
from repro.coding.registry import build_strategy, natural_partitions
from repro.experiments.clusters import build_cluster
from repro.simulation.cluster import uniform_cluster
from repro.simulation.network import LogNormalNetwork, SimpleNetwork
from repro.simulation.rng import RngStreams
from repro.simulation.timing import (
    simulate_worker_timing_arrays,
    simulate_worker_timing_arrays_batch,
)
from repro.simulation.vectorized import (
    StackedRun,
    TimingTraceKernel,
    simulate_worker_timing_arrays_stacked,
)

#: Every registered straggler model, as declarative specs (worker 1 fails at
#: iteration 5 in the fail_stop case so the stack carries ``inf`` rows).
STRAGGLER_SPECS = {
    "none": StragglerSpec("none", {}),
    "artificial_delay": StragglerSpec(
        "artificial_delay", {"num_stragglers": 2, "delay_seconds": 1.0}
    ),
    "transient": StragglerSpec(
        "transient", {"probability": 0.2, "mean_delay_seconds": 1.5}
    ),
    "bursty": StragglerSpec(
        "bursty",
        {"enter_probability": 0.1, "exit_probability": 0.3, "mean_delay_seconds": 2.0},
    ),
    "fail_stop": StragglerSpec("fail_stop", {"failures": {1: 5}}),
    "composite": StragglerSpec(
        "composite",
        {
            "parts": [
                {
                    "kind": "artificial_delay",
                    "params": {"num_stragglers": 1, "delay_seconds": 0.5},
                },
                {
                    "kind": "transient",
                    "params": {"probability": 0.1, "mean_delay_seconds": 0.8},
                },
            ]
        },
    ),
}

TABLE_II_CLUSTERS = ["Cluster-A", "Cluster-B", "Cluster-C", "Cluster-D"]

SEEDS = [11, 12, 13, 14, 15]


def make_kernel(cluster, scheme="heter_aware", network=None, seed=0):
    k = natural_partitions(scheme, cluster.num_workers, 2)
    strategy = build_strategy(
        scheme,
        throughputs=cluster.estimated_throughputs,
        num_partitions=k,
        num_stragglers=1,
        rng=np.random.default_rng(seed),
    )
    return TimingTraceKernel(
        strategy,
        cluster,
        samples_per_partition=max(1, 2048 // k),
        gradient_bytes=8.0 * 65536,
        network=network or SimpleNetwork(),
    )


def stacked_runs(seeds, straggler_spec, stochastic_network):
    """One StackedRun per seed with fresh v2 component streams."""
    runs = []
    for seed in seeds:
        streams = RngStreams.from_seed(seed)
        runs.append(
            StackedRun(
                injector_rng=streams.injector,
                jitter_rng=streams.jitter,
                network_rng=streams.network if stochastic_network else None,
                injector=build_injector(straggler_spec),
            )
        )
    return runs


def solo_arrays(kernel, num_iterations, seed, straggler_spec, stochastic_network):
    streams = RngStreams.from_seed(seed)
    return kernel.run_batched(
        num_iterations,
        injector_rng=streams.injector,
        jitter_rng=streams.jitter,
        injector=build_injector(straggler_spec),
        network_rng=streams.network if stochastic_network else None,
    )


def assert_arrays_identical(stacked, solo):
    np.testing.assert_array_equal(stacked.durations, solo.durations)
    np.testing.assert_array_equal(stacked.compute_times, solo.compute_times)
    np.testing.assert_array_equal(stacked.completion_times, solo.completion_times)
    assert stacked.workers_used == solo.workers_used
    assert stacked.used_groups == solo.used_groups


class TestRunStackedBitIdentity:
    """``run_stacked`` slice r == standalone ``run_batched`` at seed r."""

    @pytest.mark.parametrize("straggler", sorted(STRAGGLER_SPECS))
    @pytest.mark.parametrize("cluster_name", TABLE_II_CLUSTERS)
    def test_every_model_on_every_table_ii_cluster(self, straggler, cluster_name):
        cluster = build_cluster(cluster_name, rng=0)
        kernel = make_kernel(cluster)
        spec = STRAGGLER_SPECS[straggler]
        n = 25
        stacked = kernel.run_stacked(n, stacked_runs(SEEDS, spec, False))
        for index, seed in enumerate(SEEDS):
            assert_arrays_identical(
                stacked[index], solo_arrays(kernel, n, seed, spec, False)
            )

    @pytest.mark.parametrize("straggler", ["none", "transient", "fail_stop"])
    def test_stochastic_network_draws_stay_per_run(self, straggler):
        cluster = build_cluster("Cluster-A", rng=0)
        kernel = make_kernel(cluster, network=LogNormalNetwork())
        spec = STRAGGLER_SPECS[straggler]
        n = 25
        stacked = kernel.run_stacked(n, stacked_runs(SEEDS, spec, True))
        for index, seed in enumerate(SEEDS):
            assert_arrays_identical(
                stacked[index], solo_arrays(kernel, n, seed, spec, True)
            )

    def test_fail_stop_rows_are_infinite(self):
        cluster = build_cluster("Cluster-A", rng=0)
        kernel = make_kernel(cluster)
        spec = STRAGGLER_SPECS["fail_stop"]
        stacked = kernel.run_stacked(12, stacked_runs(SEEDS[:2], spec, False))
        for arrays in stacked:
            assert np.isinf(arrays.completion_times[6:, 1]).all()
            for used in arrays.workers_used[6:]:
                assert 1 not in used

    def test_deterministic_stack_matches_v1_run(self):
        # Noise-free cluster + rng-free injector: the v1 scalar path, the
        # batched path and the stacked path must all coincide exactly.
        cluster = uniform_cluster("flat", 6, compute_noise=0.0)
        kernel = make_kernel(cluster, scheme="cyclic")
        spec = STRAGGLER_SPECS["artificial_delay"]
        v1 = kernel.run(10, rng=0, injector=build_injector(spec))
        stacked = kernel.run_stacked(10, stacked_runs([0, 1], spec, False))
        for arrays in stacked:
            np.testing.assert_array_equal(arrays.durations, v1.durations)

    def test_per_run_clusters_share_the_decoder(self):
        # Seed sweeps build seed-dependent clusters; decode decisions depend
        # only on the strategy, so per-run clusters ride the same kernel.
        base = build_cluster("Cluster-A", rng=0)
        kernel = make_kernel(base, scheme="naive")
        spec = STRAGGLER_SPECS["artificial_delay"]
        n = 20
        runs = []
        for seed in SEEDS:
            streams = RngStreams.from_seed(seed)
            runs.append(
                StackedRun(
                    injector_rng=streams.injector,
                    jitter_rng=streams.jitter,
                    injector=build_injector(spec),
                    cluster=build_cluster("Cluster-A", rng=seed),
                )
            )
        stacked = kernel.run_stacked(n, runs)
        for index, seed in enumerate(SEEDS):
            solo_kernel = make_kernel(
                build_cluster("Cluster-A", rng=seed), scheme="naive"
            )
            assert_arrays_identical(
                stacked[index], solo_arrays(solo_kernel, n, seed, spec, False)
            )

    def test_rejects_empty_runs(self):
        kernel = make_kernel(build_cluster("Cluster-A", rng=0))
        with pytest.raises(ValueError, match="runs"):
            kernel.run_stacked(5, [])


class TestStackedTimingArrays:
    """``simulate_worker_timing_arrays_stacked`` vs the batch/scalar paths."""

    @pytest.mark.parametrize("straggler", sorted(STRAGGLER_SPECS))
    def test_slices_match_standalone_batch(self, straggler):
        cluster = build_cluster("Cluster-B", rng=0)
        workloads = np.full(cluster.num_workers, 48.0)
        spec = STRAGGLER_SPECS[straggler]
        n = 25
        compute, delays, comm = simulate_worker_timing_arrays_stacked(
            cluster,
            workloads,
            n,
            stacked_runs(SEEDS, spec, False),
            gradient_bytes=8.0 * 65536,
            network=SimpleNetwork(),
        )
        assert comm.shape == (cluster.num_workers,)
        for index, seed in enumerate(SEEDS):
            streams = RngStreams.from_seed(seed)
            solo_compute, solo_delays, solo_comm = simulate_worker_timing_arrays_batch(
                cluster,
                workloads,
                n,
                injector=build_injector(spec),
                gradient_bytes=8.0 * 65536,
                network=SimpleNetwork(),
                injector_rng=streams.injector,
                jitter_rng=streams.jitter,
            )
            np.testing.assert_array_equal(compute[index], solo_compute)
            np.testing.assert_array_equal(delays[index], solo_delays)
            np.testing.assert_array_equal(comm, solo_comm)

    def test_stochastic_network_comm_is_per_run(self):
        cluster = build_cluster("Cluster-A", rng=0)
        workloads = np.full(cluster.num_workers, 32.0)
        spec = STRAGGLER_SPECS["none"]
        compute, delays, comm = simulate_worker_timing_arrays_stacked(
            cluster,
            workloads,
            15,
            stacked_runs(SEEDS, spec, True),
            gradient_bytes=1e6,
            network=LogNormalNetwork(),
        )
        assert comm.shape == (len(SEEDS), 15, cluster.num_workers)
        for index, seed in enumerate(SEEDS):
            streams = RngStreams.from_seed(seed)
            _, _, solo_comm = simulate_worker_timing_arrays_batch(
                cluster,
                workloads,
                15,
                gradient_bytes=1e6,
                network=LogNormalNetwork(),
                injector_rng=streams.injector,
                jitter_rng=streams.jitter,
                network_rng=streams.network,
            )
            np.testing.assert_array_equal(comm[index], solo_comm)

    def test_deterministic_rows_match_the_scalar_path(self):
        # Noise-free cluster, rng-free injector, deterministic network: every
        # stacked row equals a per-iteration simulate_worker_timing_arrays
        # call (the original scalar kernel all the batch forms grew from).
        cluster = uniform_cluster("flat", 5, compute_noise=0.0)
        workloads = np.array([16.0, 0.0, 16.0, 16.0, 16.0])
        pinned = StragglerSpec(
            "artificial_delay",
            {"num_stragglers": 2, "delay_seconds": 1.0, "workers": [2, 3]},
        )
        injector = build_injector(pinned)
        compute, delays, comm = simulate_worker_timing_arrays_stacked(
            cluster,
            workloads,
            4,
            stacked_runs([0], pinned, False),
            injector=injector,
            gradient_bytes=1e6,
            network=SimpleNetwork(),
        )
        for iteration in range(4):
            ref_compute, ref_delays, ref_comm = simulate_worker_timing_arrays(
                cluster,
                workloads,
                injector=injector,
                iteration=iteration,
                gradient_bytes=1e6,
                network=SimpleNetwork(),
            )
            np.testing.assert_array_equal(compute[0, iteration], ref_compute)
            np.testing.assert_array_equal(delays[0, iteration], ref_delays)
            np.testing.assert_array_equal(comm, ref_comm)


class TestComputeTimesStacked:
    """``ClusterSpec.compute_times_stacked`` vs batch and scalar draws."""

    @pytest.mark.parametrize("cluster_name", TABLE_II_CLUSTERS)
    def test_slices_match_standalone_batch(self, cluster_name):
        cluster = build_cluster(cluster_name, rng=0)
        workloads = np.full(cluster.num_workers, 64.0)
        rngs = [RngStreams.from_seed(seed).jitter for seed in SEEDS]
        stacked = cluster.compute_times_stacked(workloads, 30, rngs)
        for index, seed in enumerate(SEEDS):
            solo = cluster.compute_times_batch(
                workloads, 30, RngStreams.from_seed(seed).jitter
            )
            np.testing.assert_array_equal(stacked[index], solo)

    def test_jitter_free_rows_equal_the_scalar_path(self):
        cluster = build_cluster("Cluster-A", rng=0)
        workloads = np.full(cluster.num_workers, 64.0)
        stacked = cluster.compute_times_stacked(workloads, 5, [None, None])
        base = cluster.compute_times(workloads, rng=None)
        assert stacked.shape == (2, 5, cluster.num_workers)
        np.testing.assert_array_equal(
            stacked, np.broadcast_to(base, stacked.shape)
        )


class TestDelaysStacked:
    """``StragglerInjector.delays_stacked`` vs batch and scalar draws."""

    @pytest.mark.parametrize(
        "straggler",
        sorted(k for k in STRAGGLER_SPECS if build_injector(STRAGGLER_SPECS[k]).stateless),
    )
    def test_stateless_slices_match_standalone_batch(self, straggler):
        # Sharing one instance across stacked runs is only sound for
        # stateless injectors (the planner builds fresh instances otherwise).
        spec = STRAGGLER_SPECS[straggler]
        injector = build_injector(spec)
        rngs = [RngStreams.from_seed(seed).injector for seed in SEEDS]
        stacked = injector.delays_stacked(0, 20, 9, rngs)
        assert stacked.shape == (len(SEEDS), 20, 9)
        for index, seed in enumerate(SEEDS):
            solo = build_injector(spec).delays_batch(
                0, 20, 9, RngStreams.from_seed(seed).injector
            )
            np.testing.assert_array_equal(stacked[index], solo)

    def test_stateful_single_run_stack_matches_batch(self):
        # A stateful injector can still be stacked one run at a time on a
        # fresh instance: the generic fallback is plain delays_batch then.
        stacked = build_injector(STRAGGLER_SPECS["bursty"]).delays_stacked(
            0, 20, 9, [RngStreams.from_seed(3).injector]
        )
        solo = build_injector(STRAGGLER_SPECS["bursty"]).delays_batch(
            0, 20, 9, RngStreams.from_seed(3).injector
        )
        np.testing.assert_array_equal(stacked[0], solo)

    def test_rng_free_rows_equal_scalar_delays(self):
        # ArtificialDelay with a fixed worker set ignores its rng: each
        # stacked row must equal the per-iteration scalar delays() result.
        injector = build_injector(
            StragglerSpec(
                "artificial_delay",
                {"num_stragglers": 2, "delay_seconds": 1.0, "workers": [2, 5]},
            )
        )
        rng = RngStreams.from_seed(0).injector
        stacked = injector.delays_stacked(0, 6, 9, [rng])
        for iteration in range(6):
            np.testing.assert_array_equal(
                stacked[0, iteration], injector.delays(iteration, 9, rng)
            )

    def test_stateless_flags(self):
        assert build_injector(STRAGGLER_SPECS["none"]).stateless
        assert build_injector(STRAGGLER_SPECS["artificial_delay"]).stateless
        assert build_injector(STRAGGLER_SPECS["fail_stop"]).stateless
        assert build_injector(STRAGGLER_SPECS["transient"]).stateless
        assert not build_injector(STRAGGLER_SPECS["bursty"]).stateless
        # A composite is stateless exactly when every child is.
        assert build_injector(STRAGGLER_SPECS["composite"]).stateless
        bursty_composite = StragglerSpec(
            "composite", {"parts": ["none", {"kind": "bursty", "params": {}}]}
        )
        assert not build_injector(bursty_composite).stateless
