"""Equivalence tests: vectorized timing kernels vs the reference loops.

The vectorized fast paths must be *exactly* equivalent — same RNG stream,
same floats, same decode decisions — to the pre-PR per-worker/per-iteration
implementations kept in :mod:`repro._reference`.  Randomized configurations
(schemes, clusters, injectors, seeds) probe the equivalence property-style.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._reference import (
    measure_timing_trace_reference,
    simulate_iteration_reference,
    simulate_worker_timings_reference,
)
from repro.coding.registry import build_strategy, natural_partitions
from repro.experiments.common import measure_timing_trace
from repro.simulation.cluster import cluster_from_vcpu_counts, uniform_cluster
from repro.simulation.network import SimpleNetwork, ZeroCommunication
from repro.simulation.stragglers import (
    ArtificialDelay,
    FailStop,
    NoStragglers,
    TransientSlowdown,
)
from repro.simulation.timing import (
    simulate_iteration,
    simulate_worker_timing_arrays,
    simulate_worker_timings,
)
from repro.simulation.vectorized import TimingTraceKernel

SCHEMES = ("naive", "cyclic", "fractional", "heter_aware", "group_based")


def make_cluster(seed: int, mixed_noise: bool = False):
    cluster = cluster_from_vcpu_counts(
        f"cluster-{seed}",
        {2: 2, 4: 2, 8: 3, 12: 1},
        compute_noise=0.02,
        rng=seed,
    )
    if mixed_noise:
        workers = [
            w if index % 2 else type(w)(
                worker_id=w.worker_id,
                vcpus=w.vcpus,
                true_throughput=w.true_throughput,
                estimated_throughput=w.estimated_throughput,
                compute_noise=0.0,
            )
            for index, w in enumerate(cluster.workers)
        ]
        cluster = cluster.with_workers(workers)
    return cluster


def injector_grid(seed: int):
    return [
        NoStragglers(),
        ArtificialDelay(1, 1.0),
        ArtificialDelay(2, 2.5),
        ArtificialDelay(1, float("inf")),
        TransientSlowdown(probability=0.3, mean_delay_seconds=1.0),
        FailStop({seed % 8: 2}),
    ]


class TestWorkerTimingsEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_batched_draws_match_reference_loop(self, seed):
        cluster = make_cluster(seed, mixed_noise=seed % 2 == 0)
        rng = np.random.default_rng(seed)
        workloads = rng.integers(0, 500, size=cluster.num_workers).astype(float)
        for injector in injector_grid(seed):
            ref_rng = np.random.default_rng(seed + 1)
            new_rng = np.random.default_rng(seed + 1)
            for iteration in range(4):
                reference = simulate_worker_timings_reference(
                    cluster, workloads, injector=injector, iteration=iteration,
                    gradient_bytes=1024.0, network=SimpleNetwork(), rng=ref_rng,
                )
                current = simulate_worker_timings(
                    cluster, workloads, injector=injector, iteration=iteration,
                    gradient_bytes=1024.0, network=SimpleNetwork(), rng=new_rng,
                )
                assert reference == current

    def test_array_form_matches_object_form(self, small_cluster):
        workloads = [100, 200, 0, 400, 400]
        compute, delays, comm = simulate_worker_timing_arrays(
            small_cluster, workloads, injector=ArtificialDelay(1, 2.0),
            gradient_bytes=4096.0, network=SimpleNetwork(), rng=7,
        )
        timings = simulate_worker_timings(
            small_cluster, workloads, injector=ArtificialDelay(1, 2.0),
            gradient_bytes=4096.0, network=SimpleNetwork(), rng=7,
        )
        for worker, timing in enumerate(timings):
            assert timing.compute_time == compute[worker]
            assert timing.injected_delay == delays[worker]
            assert timing.comm_time == comm[worker]

    def test_zero_workload_worker_pays_no_comm(self, small_cluster):
        _, _, comm = simulate_worker_timing_arrays(
            small_cluster, [0, 10, 10, 10, 10],
            gradient_bytes=1e6, network=SimpleNetwork(), rng=0,
        )
        assert comm[0] == 0.0
        assert np.all(comm[1:] > 0.0)


class TestSimulateIterationEquivalence:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("seed", range(3))
    def test_iteration_matches_reference(self, scheme, seed):
        cluster = make_cluster(seed)
        k = natural_partitions(scheme, cluster.num_workers, 2)
        strategy = build_strategy(
            scheme,
            throughputs=cluster.estimated_throughputs,
            num_partitions=k,
            num_stragglers=1,
            rng=seed,
        )
        for injector in injector_grid(seed):
            ref_rng = np.random.default_rng(seed)
            new_rng = np.random.default_rng(seed)
            for iteration in range(3):
                reference = simulate_iteration_reference(
                    strategy, cluster, samples_per_partition=32,
                    injector=injector, iteration=iteration,
                    gradient_bytes=2048.0, rng=ref_rng,
                )
                current = simulate_iteration(
                    strategy, cluster, samples_per_partition=32,
                    injector=injector, iteration=iteration,
                    gradient_bytes=2048.0, rng=new_rng,
                )
                assert reference.duration == current.duration
                assert reference.workers_used == current.workers_used
                assert reference.used_group == current.used_group
                assert reference.decodable == current.decodable
                assert np.array_equal(
                    reference.completion_times, current.completion_times
                )


class TestTraceKernelEquivalence:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_kernel_run_matches_iteration_loop(self, scheme):
        cluster = make_cluster(3)
        k = natural_partitions(scheme, cluster.num_workers, 2)
        strategy = build_strategy(
            scheme,
            throughputs=cluster.estimated_throughputs,
            num_partitions=k,
            num_stragglers=1,
            rng=3,
        )
        injector = ArtificialDelay(1, 1.5)
        kernel = TimingTraceKernel(
            strategy, cluster, samples_per_partition=32,
            injector=injector, network=SimpleNetwork(), gradient_bytes=2048.0,
        )
        arrays = kernel.run(40, rng=np.random.default_rng(9))
        loop_rng = np.random.default_rng(9)
        for iteration in range(40):
            timing = simulate_iteration_reference(
                strategy, cluster, samples_per_partition=32,
                injector=injector, iteration=iteration,
                gradient_bytes=2048.0, network=SimpleNetwork(), rng=loop_rng,
            )
            assert timing.duration == arrays.durations[iteration]
            assert timing.workers_used == arrays.workers_used[iteration]
            assert timing.used_group == arrays.used_groups[iteration]
            assert np.array_equal(
                timing.completion_times, arrays.completion_times[iteration]
            )

    def test_kernel_rejects_bad_injector_on_any_iteration(self):
        class BadAfterFirst(NoStragglers):
            def delays(self, iteration, num_workers, rng):
                if iteration == 0:
                    return np.zeros(num_workers)
                return np.zeros(num_workers + 1)

        cluster = uniform_cluster("uni", 4, compute_noise=0.0)
        strategy = build_strategy(
            "cyclic", throughputs=cluster.estimated_throughputs,
            num_partitions=4, num_stragglers=1, rng=0,
        )
        kernel = TimingTraceKernel(
            strategy, cluster, samples_per_partition=8, injector=BadAfterFirst()
        )
        with pytest.raises(Exception, match="wrong number of delays"):
            kernel.run(3, rng=0)

    def test_kernel_drops_nan_completions_like_reference(self):
        class NanDelay(NoStragglers):
            def delays(self, iteration, num_workers, rng):
                delays = np.zeros(num_workers)
                delays[0] = np.nan
                return delays

        cluster = uniform_cluster("uni", 4, compute_noise=0.0)
        strategy = build_strategy(
            "cyclic", throughputs=cluster.estimated_throughputs,
            num_partitions=4, num_stragglers=1, rng=0,
        )
        kernel = TimingTraceKernel(
            strategy, cluster, samples_per_partition=8, injector=NanDelay()
        )
        arrays = kernel.run(2, rng=0)
        loop_rng = np.random.default_rng(0)
        for iteration in range(2):
            timing = simulate_iteration_reference(
                strategy, cluster, samples_per_partition=8,
                injector=NanDelay(), iteration=iteration, rng=loop_rng,
            )
            assert timing.duration == arrays.durations[iteration]
            assert timing.workers_used == arrays.workers_used[iteration]

    def test_kernel_handles_undecodable_runs(self):
        cluster = uniform_cluster("uni", 4, compute_noise=0.0)
        strategy = build_strategy(
            "naive", throughputs=cluster.estimated_throughputs,
            num_partitions=4, num_stragglers=0, rng=0,
        )
        kernel = TimingTraceKernel(
            strategy, cluster, samples_per_partition=8,
            injector=FailStop({0: 0}),
        )
        arrays = kernel.run(5, rng=0)
        assert np.all(np.isinf(arrays.durations))
        assert arrays.workers_used == ((),) * 5
        assert not arrays.decodable.any()


class TestMeasureTimingTraceEquivalence:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("seed", [0, 11])
    @pytest.mark.filterwarnings("ignore::UserWarning")
    def test_full_trace_identical_to_reference(self, scheme, seed):
        cluster = make_cluster(seed)
        reference = measure_timing_trace_reference(
            scheme, cluster, num_stragglers=1, total_samples=2048,
            num_iterations=60, injector=ArtificialDelay(1, 1.0), seed=seed,
        )
        current = measure_timing_trace(
            scheme, cluster, num_stragglers=1, total_samples=2048,
            num_iterations=60, injector=ArtificialDelay(1, 1.0), seed=seed,
        )
        assert reference.metadata == current.metadata
        assert np.array_equal(reference.durations, current.durations)
        for ref_record, new_record in zip(reference.records, current.records):
            assert tuple(map(float, ref_record.compute_times)) == tuple(
                map(float, new_record.compute_times)
            )
            assert tuple(map(float, ref_record.completion_times)) == tuple(
                map(float, new_record.completion_times)
            )
            assert ref_record.workers_used == new_record.workers_used
            assert ref_record.used_group == new_record.used_group

    def test_trace_round_trips_through_json(self):
        cluster = make_cluster(0)
        trace = measure_timing_trace(
            "heter_aware", cluster, num_stragglers=1, total_samples=2048,
            num_iterations=5, seed=0,
        )
        from repro.simulation.trace import RunTrace

        assert RunTrace.from_dict(trace.to_dict()).to_dict() == trace.to_dict()
