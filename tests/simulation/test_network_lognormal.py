"""Tests for the stochastic LogNormalNetwork and the v2 ``network`` stream."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.api import Engine, RunSpec
from repro.api.builders import build_network
from repro.api.registry import NETWORK_MODELS
from repro.api.spec import NetworkSpec
from repro.experiments.clusters import build_cluster
from repro.experiments.common import SampleCountDriftWarning, measure_timing_trace
from repro.simulation.network import (
    LogNormalNetwork,
    NetworkError,
    SimpleNetwork,
    ZeroCommunication,
)
from repro.protocols.base import ProtocolError
from repro.simulation.timing import TimingError, simulate_iteration


class TestLogNormalNetworkModel:
    def test_median_matches_simple_network(self):
        lognormal = LogNormalNetwork(latency_seconds=0.01,
                                     bandwidth_bytes_per_second=1e8)
        simple = SimpleNetwork(latency_seconds=0.01,
                               bandwidth_bytes_per_second=1e8)
        assert lognormal.transfer_time(65536) == pytest.approx(
            simple.transfer_time(65536)
        )

    def test_samples_concentrate_around_typical_value(self):
        network = LogNormalNetwork(latency_sigma=0.2, bandwidth_sigma=0.1)
        rng = np.random.default_rng(0)
        samples = network.sample_transfer_times(8.0 * 65536, (4000,), rng)
        assert samples.shape == (4000,)
        assert np.all(samples > 0)
        typical = network.transfer_time(8.0 * 65536)
        assert np.median(samples) == pytest.approx(typical, rel=0.05)
        assert samples.std() > 0

    def test_zero_sigma_degenerates_to_deterministic_times(self):
        network = LogNormalNetwork(latency_sigma=0.0, bandwidth_sigma=0.0)
        samples = network.sample_transfer_times(
            1024.0, (3, 2), np.random.default_rng(0)
        )
        assert np.allclose(samples, network.transfer_time(1024.0))

    def test_validation(self):
        with pytest.raises(NetworkError):
            LogNormalNetwork(latency_seconds=-1)
        with pytest.raises(NetworkError):
            LogNormalNetwork(latency_sigma=-0.1)
        with pytest.raises(NetworkError):
            LogNormalNetwork().sample_transfer_times(
                -1.0, (2,), np.random.default_rng(0)
            )

    def test_stochastic_flags(self):
        assert LogNormalNetwork().is_stochastic
        assert not SimpleNetwork().is_stochastic
        assert not ZeroCommunication().is_stochastic

    def test_deterministic_models_sample_without_consuming_randomness(self):
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state
        samples = SimpleNetwork().sample_transfer_times(1024.0, (5, 3), rng)
        assert rng.bit_generator.state == before
        assert np.allclose(samples, SimpleNetwork().transfer_time(1024.0))

    def test_fingerprints_distinguish_distributions(self):
        a = LogNormalNetwork(latency_sigma=0.25)
        b = LogNormalNetwork(latency_sigma=0.5)
        c = LogNormalNetwork(latency_sigma=0.25)
        assert a.fingerprint(1024.0) != b.fingerprint(1024.0)
        assert a.fingerprint(1024.0) == c.fingerprint(1024.0)
        # ...even when their medians collide with a deterministic model's.
        assert a.fingerprint(1024.0) != SimpleNetwork().fingerprint(1024.0)

    def test_registered_in_network_model_registry(self):
        assert "lognormal" in NETWORK_MODELS
        network = build_network(
            NetworkSpec("lognormal", {"latency_sigma": 0.4})
        )
        assert isinstance(network, LogNormalNetwork)
        assert network.latency_sigma == 0.4


class TestStochasticNetworkTiming:
    def kwargs(self) -> dict:
        return dict(
            num_stragglers=1,
            total_samples=2048,
            num_iterations=40,
            seed=5,
        )

    def test_v1_timing_raises_a_clear_error(self):
        cluster = build_cluster("Cluster-A", rng=0)
        with pytest.raises(TimingError, match="rng_version=2"):
            measure_timing_trace(
                "heter_aware", cluster, network=LogNormalNetwork(),
                rng_version=1, **self.kwargs(),
            )

    def test_simulate_iteration_rejects_stochastic_networks(self):
        cluster = build_cluster("Cluster-A", rng=0)
        from repro.coding.registry import build_strategy

        strategy = build_strategy(
            "cyclic",
            throughputs=cluster.estimated_throughputs,
            num_partitions=cluster.num_workers,
            num_stragglers=1,
            rng=0,
        )
        with pytest.raises(TimingError, match="rng_version=2"):
            simulate_iteration(
                strategy, cluster, samples_per_partition=8,
                network=LogNormalNetwork(), rng=0,
            )

    def test_v2_run_is_deterministic_in_the_seed(self):
        cluster = build_cluster("Cluster-A", rng=0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", SampleCountDriftWarning)
            a = measure_timing_trace(
                "heter_aware", cluster, network=LogNormalNetwork(),
                rng_version=2, **self.kwargs(),
            )
            b = measure_timing_trace(
                "heter_aware", cluster, network=LogNormalNetwork(),
                rng_version=2, **self.kwargs(),
            )
        np.testing.assert_array_equal(a.durations, b.durations)
        np.testing.assert_array_equal(
            a.columns().completion_times, b.columns().completion_times
        )

    def test_network_stream_actually_perturbs_the_run(self):
        """The reserved v2 ``network`` child stream is finally consumed."""
        cluster = build_cluster("Cluster-A", rng=0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", SampleCountDriftWarning)
            stochastic = measure_timing_trace(
                "heter_aware", cluster,
                network=LogNormalNetwork(latency_sigma=0.5, bandwidth_sigma=0.3),
                rng_version=2, **self.kwargs(),
            )
            deterministic = measure_timing_trace(
                "heter_aware", cluster, network=SimpleNetwork(),
                rng_version=2, **self.kwargs(),
            )
        # Same injector/jitter streams, different comm: compute times agree,
        # completion times do not.
        np.testing.assert_array_equal(
            stochastic.columns().compute_times,
            deterministic.columns().compute_times,
        )
        assert not np.array_equal(
            stochastic.columns().completion_times,
            deterministic.columns().completion_times,
        )
        # Per-message variation: loaded workers see non-constant comm times.
        comm = (
            stochastic.columns().completion_times
            - stochastic.columns().compute_times
        )
        assert np.std(comm[np.isfinite(comm)]) > 0

    def test_engine_runs_lognormal_specs_end_to_end(self):
        result = Engine().run(
            RunSpec(
                num_iterations=10,
                total_samples=1024,
                rng_version=2,
                seed=3,
                network={"kind": "lognormal", "params": {"latency_sigma": 0.3}},
            )
        )
        assert result.trace.num_iterations == 10
        assert result.trace.metadata["rng_version"] == 2
        again = Engine().run(
            RunSpec(
                num_iterations=10,
                total_samples=1024,
                rng_version=2,
                seed=3,
                network={"kind": "lognormal", "params": {"latency_sigma": 0.3}},
            )
        )
        np.testing.assert_array_equal(
            result.trace.durations, again.trace.durations
        )

    def test_engine_v1_lognormal_fails_loudly(self):
        with pytest.raises(TimingError, match="rng_version=2"):
            Engine().run(
                RunSpec(
                    num_iterations=5,
                    total_samples=1024,
                    seed=3,
                    network={"kind": "lognormal"},
                )
            )


class TestStochasticNetworkTraining:
    def spec(self, scheme: str, rng_version: int) -> RunSpec:
        return RunSpec(
            mode="training", scheme=scheme, cluster="Cluster-A",
            num_iterations=3, total_samples=256, seed=4,
            rng_version=rng_version,
            network={"kind": "lognormal", "params": {"latency_sigma": 0.4}},
        )

    @pytest.mark.parametrize("scheme", ["ssp", "dyn_ssp", "async"])
    def test_ssp_family_samples_the_network_stream_under_v2(self, scheme):
        stochastic = Engine().run(self.spec(scheme, 2))
        deterministic = Engine().run(
            self.spec(scheme, 2).replace(network={"kind": "simple"})
        )
        assert stochastic.trace.num_iterations >= 1
        # The network stream actually perturbs the event timeline.
        assert not np.array_equal(
            stochastic.trace.durations, deterministic.trace.durations
        )
        # ...deterministically in the seed.
        again = Engine().run(self.spec(scheme, 2))
        np.testing.assert_array_equal(
            stochastic.trace.durations, again.trace.durations
        )

    @pytest.mark.parametrize("scheme", ["ssp", "heter_aware"])
    def test_training_v1_fails_loudly_instead_of_using_the_median(self, scheme):
        with pytest.raises((TimingError, ProtocolError), match="rng_version=2"):
            Engine().run(self.spec(scheme, 1))

    def test_coded_v2_training_consumes_network_stream(self):
        stochastic = Engine().run(self.spec("heter_aware", 2))
        deterministic = Engine().run(
            self.spec("heter_aware", 2).replace(network={"kind": "simple"})
        )
        assert not np.array_equal(
            stochastic.trace.durations, deterministic.trace.durations
        )


class TestRunTraceEquality:
    def test_round_trip_equality_restored(self):
        cluster = build_cluster("Cluster-A", rng=0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", SampleCountDriftWarning)
            trace = measure_timing_trace(
                "heter_aware", cluster, num_stragglers=1,
                total_samples=2048, num_iterations=5, seed=0,
            )
        from repro.simulation.trace import RunTrace

        assert RunTrace.from_dict(trace.to_dict()) == trace
        other = RunTrace.from_dict(trace.to_dict())
        other.metadata["extra"] = 1
        assert other != trace
        assert trace != "not a trace"


class TestOverlappedStochasticBase:
    def overlapped(self) -> dict:
        return {
            "kind": "overlapped",
            "params": {
                "base": {"kind": "lognormal", "params": {"latency_sigma": 0.4}},
                "overlap_fraction": 0.5,
            },
        }

    def test_stochasticity_propagates_through_overlap(self):
        from repro.simulation.network import OverlappedNetwork

        stochastic = OverlappedNetwork(base=LogNormalNetwork())
        deterministic = OverlappedNetwork(base=SimpleNetwork())
        assert stochastic.is_stochastic
        assert not deterministic.is_stochastic
        samples = stochastic.sample_transfer_times(
            8.0 * 65536, (2000,), np.random.default_rng(0)
        )
        assert samples.std() > 0  # genuinely per-message, not a constant
        base_samples = LogNormalNetwork().sample_transfer_times(
            8.0 * 65536, (2000,), np.random.default_rng(0)
        )
        np.testing.assert_allclose(samples, 0.5 * base_samples)

    def test_fingerprint_distinguishes_overlap_and_base(self):
        from repro.simulation.network import OverlappedNetwork

        a = OverlappedNetwork(base=LogNormalNetwork(), overlap_fraction=0.5)
        b = OverlappedNetwork(base=LogNormalNetwork(), overlap_fraction=0.25)
        c = OverlappedNetwork(base=LogNormalNetwork(latency_sigma=0.5))
        assert a.fingerprint(1024.0) != b.fingerprint(1024.0)
        assert a.fingerprint(1024.0) != c.fingerprint(1024.0)
        deterministic = OverlappedNetwork(base=SimpleNetwork(), overlap_fraction=0.5)
        assert deterministic.fingerprint(1024.0)[0] == "deterministic"

    def test_v1_overlapped_lognormal_fails_loudly(self):
        with pytest.raises(TimingError, match="rng_version=2"):
            Engine().run(
                RunSpec(
                    num_iterations=3, total_samples=1024, seed=0,
                    network=self.overlapped(),
                )
            )

    def test_v2_overlapped_lognormal_draws_the_network_stream(self):
        result = Engine().run(
            RunSpec(
                num_iterations=8, total_samples=1024, seed=0, rng_version=2,
                network=self.overlapped(),
            )
        )
        plain = Engine().run(
            RunSpec(
                num_iterations=8, total_samples=1024, seed=0, rng_version=2,
                network={"kind": "simple"},
            )
        )
        assert not np.array_equal(result.trace.durations, plain.trace.durations)
