"""Property-based tests for the iteration timing engine's invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import Decoder, build_strategy, natural_partitions
from repro.metrics.resource_usage import iteration_resource_usage
from repro.simulation.cluster import ClusterSpec
from repro.simulation.network import SimpleNetwork
from repro.simulation.stragglers import ArtificialDelay, NoStragglers
from repro.simulation.timing import simulate_iteration
from repro.simulation.trace import IterationRecord
from repro.simulation.workers import WorkerSpec


def make_cluster(speeds: list[float]) -> ClusterSpec:
    workers = tuple(
        WorkerSpec(
            worker_id=i,
            vcpus=1,
            true_throughput=100.0 * speed,
            compute_noise=0.01,
        )
        for i, speed in enumerate(speeds)
    )
    return ClusterSpec(name="prop-cluster", workers=workers)


speeds_strategy = st.lists(
    st.floats(min_value=0.5, max_value=6.0), min_size=3, max_size=8
)


@given(
    speeds=speeds_strategy,
    scheme=st.sampled_from(["naive", "cyclic", "heter_aware", "group_based"]),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=40, deadline=None)
def test_duration_equals_latest_used_worker(speeds, scheme, seed):
    """The iteration ends exactly when the slowest *used* worker reports."""
    cluster = make_cluster(speeds)
    k = natural_partitions(scheme, cluster.num_workers)
    strategy = build_strategy(
        scheme,
        throughputs=cluster.estimated_throughputs,
        num_partitions=k,
        num_stragglers=0 if scheme == "naive" else 1,
        rng=seed,
    )
    timing = simulate_iteration(
        strategy,
        cluster,
        samples_per_partition=32,
        injector=NoStragglers(),
        network=SimpleNetwork(),
        rng=seed,
    )
    assert timing.decodable
    used_times = [timing.completion_times[w] for w in timing.workers_used]
    assert timing.duration == max(used_times)
    # No worker that finished *after* the duration was needed.
    assert all(t <= timing.duration + 1e-12 for t in used_times)


@given(speeds=speeds_strategy, seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_used_workers_can_actually_decode(speeds, seed):
    """The worker set the engine reports is genuinely decodable."""
    cluster = make_cluster(speeds)
    k = 2 * cluster.num_workers
    strategy = build_strategy(
        "heter_aware",
        throughputs=cluster.estimated_throughputs,
        num_partitions=k,
        num_stragglers=1,
        rng=seed,
    )
    timing = simulate_iteration(
        strategy,
        cluster,
        samples_per_partition=32,
        injector=ArtificialDelay(1, 5.0),
        network=SimpleNetwork(),
        rng=seed,
    )
    assert timing.decodable
    assert Decoder(strategy).can_decode(timing.workers_used)


@given(speeds=speeds_strategy, seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_resource_usage_bounded(speeds, seed):
    """Per-iteration resource usage always lies in (0, 1]."""
    cluster = make_cluster(speeds)
    strategy = build_strategy(
        "heter_aware",
        throughputs=cluster.estimated_throughputs,
        num_partitions=2 * cluster.num_workers,
        num_stragglers=1,
        rng=seed,
    )
    timing = simulate_iteration(
        strategy,
        cluster,
        samples_per_partition=32,
        network=SimpleNetwork(),
        rng=seed,
    )
    record = IterationRecord(
        iteration=0,
        duration=timing.duration,
        train_loss=0.0,
        compute_times=tuple(timing.compute_times),
        completion_times=tuple(timing.completion_times),
        workers_used=timing.workers_used,
    )
    usage = iteration_resource_usage(record)
    assert 0.0 < usage <= 1.0


@given(
    speeds=speeds_strategy,
    delay=st.floats(min_value=0.0, max_value=30.0),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=40, deadline=None)
def test_heter_aware_duration_insensitive_to_single_delay(speeds, delay, seed):
    """One delayed worker never slows a 1-straggler-tolerant scheme by more
    than the delayed worker's own contribution (it can simply be skipped)."""
    cluster = make_cluster(speeds)
    k = 2 * cluster.num_workers
    strategy = build_strategy(
        "heter_aware",
        throughputs=cluster.estimated_throughputs,
        num_partitions=k,
        num_stragglers=1,
        rng=seed,
    )
    baseline = simulate_iteration(
        strategy,
        cluster,
        samples_per_partition=32,
        injector=NoStragglers(),
        network=SimpleNetwork(),
        rng=seed,
    )
    delayed = simulate_iteration(
        strategy,
        cluster,
        samples_per_partition=32,
        injector=ArtificialDelay(1, delay, workers=(0,)),
        network=SimpleNetwork(),
        rng=seed,
    )
    assert delayed.decodable
    # The delayed run is never worse than waiting for every non-delayed
    # worker plus jitter; in particular it never inherits the full delay
    # when the delay exceeds the spread of normal completion times.
    others_max = max(
        t for w, t in enumerate(baseline.completion_times) if w != 0
    )
    assert delayed.duration <= max(others_max, baseline.duration) * 1.5 + 1e-9
