"""Unit tests for the iteration timing engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding import (
    cyclic_strategy,
    heterogeneity_aware_strategy,
    naive_strategy,
)
from repro.simulation.network import SimpleNetwork, ZeroCommunication
from repro.simulation.stragglers import ArtificialDelay, FailStop, NoStragglers
from repro.simulation.timing import (
    TimingError,
    simulate_iteration,
    simulate_worker_timings,
    worker_workloads,
)


@pytest.fixture
def heter_strategy(small_cluster):
    return heterogeneity_aware_strategy(
        small_cluster.estimated_throughputs,
        num_partitions=10,
        num_stragglers=1,
        rng=0,
    )


class TestWorkerWorkloads:
    def test_workloads_scale_with_partition_size(self, heter_strategy):
        small = worker_workloads(heter_strategy, 10)
        large = worker_workloads(heter_strategy, 20)
        assert np.allclose(large, 2 * small)

    def test_workload_equals_load_times_size(self, heter_strategy):
        workloads = worker_workloads(heter_strategy, 7)
        assert np.allclose(workloads, np.array(heter_strategy.loads) * 7)

    def test_rejects_negative_size(self, heter_strategy):
        with pytest.raises(TimingError):
            worker_workloads(heter_strategy, -1)


class TestSimulateWorkerTimings:
    def test_no_noise_no_delay_exact_times(self, small_cluster):
        workloads = [100, 200, 300, 400, 400]
        timings = simulate_worker_timings(
            small_cluster, workloads, network=ZeroCommunication(), rng=None
        )
        # small_cluster throughputs are [100, 200, 300, 400, 400] with zero
        # noise, so every worker takes exactly 1 second of compute.
        for timing in timings:
            assert timing.compute_time == pytest.approx(1.0)
            assert timing.injected_delay == 0.0
            assert timing.comm_time == 0.0
            assert not timing.failed

    def test_network_time_added_only_for_loaded_workers(self, small_cluster):
        workloads = [0, 200, 300, 400, 400]
        network = SimpleNetwork(latency_seconds=0.5, bandwidth_bytes_per_second=1e12)
        timings = simulate_worker_timings(
            small_cluster, workloads, network=network, gradient_bytes=10, rng=None
        )
        assert timings[0].comm_time == 0.0
        assert timings[1].comm_time == pytest.approx(0.5, rel=1e-6)

    def test_injected_delay_applied(self, small_cluster):
        injector = ArtificialDelay(1, 5.0, workers=(2,))
        timings = simulate_worker_timings(
            small_cluster,
            [100] * 5,
            injector=injector,
            network=ZeroCommunication(),
            rng=0,
        )
        assert timings[2].injected_delay == 5.0

    def test_failed_worker_completion_is_infinite(self, small_cluster):
        injector = FailStop({1: 0})
        timings = simulate_worker_timings(
            small_cluster, [100] * 5, injector=injector, rng=0
        )
        assert timings[1].failed
        assert np.isinf(timings[1].completion_time)

    def test_rejects_wrong_workload_count(self, small_cluster):
        with pytest.raises(TimingError):
            simulate_worker_timings(small_cluster, [1, 2, 3])

    def test_rejects_negative_workloads(self, small_cluster):
        with pytest.raises(TimingError):
            simulate_worker_timings(small_cluster, [1, 2, 3, -4, 5])


class TestSimulateIteration:
    def test_heter_aware_balanced_duration(self, small_cluster, heter_strategy):
        timing = simulate_iteration(
            heter_strategy,
            small_cluster,
            samples_per_partition=70,
            injector=NoStragglers(),
            network=ZeroCommunication(),
            rng=None,
        )
        assert timing.decodable
        # Loads are proportional to throughput => everyone finishes near the
        # Theorem 5 bound 2 * 700 / 1400 = 1.0; integer rounding of the loads
        # (10 partitions over 5 workers) costs at most one partition on the
        # critical worker, i.e. 70 / 400 = 0.175 s here.
        expected = 2 * 10 * 70 / small_cluster.true_throughputs.sum()
        assert expected <= timing.duration <= expected + 70 / 400 + 1e-9

    def test_naive_waits_for_slowest(self, small_cluster):
        strategy = naive_strategy(5)
        timing = simulate_iteration(
            strategy,
            small_cluster,
            samples_per_partition=100,
            network=ZeroCommunication(),
            rng=None,
        )
        # Slowest worker: 100 samples at 100 samples/s.
        assert timing.duration == pytest.approx(1.0)
        assert len(timing.workers_used) == 5

    def test_naive_with_fault_is_undecodable(self, small_cluster):
        strategy = naive_strategy(5)
        timing = simulate_iteration(
            strategy,
            small_cluster,
            samples_per_partition=100,
            injector=FailStop({0: 0}),
            rng=None,
        )
        assert not timing.decodable
        assert np.isinf(timing.duration)
        assert timing.workers_used == ()

    def test_coded_scheme_survives_fault(self, small_cluster, heter_strategy):
        timing = simulate_iteration(
            heter_strategy,
            small_cluster,
            samples_per_partition=70,
            injector=FailStop({4: 0}),
            network=ZeroCommunication(),
            rng=None,
        )
        assert timing.decodable
        assert 4 not in timing.workers_used

    def test_cyclic_limited_by_slow_workers(self, small_cluster):
        strategy = cyclic_strategy(5, 1, rng=0)
        timing = simulate_iteration(
            strategy,
            small_cluster,
            samples_per_partition=100,
            network=ZeroCommunication(),
            rng=None,
        )
        # Each worker holds 2 partitions = 200 samples; the master can skip
        # only the single slowest worker, so the second-slowest (200 samples
        # at 200/s = 1.0 s) sets the duration... unless the skipped worker is
        # needed. Duration must be at least 200/200 and at most 200/100.
        assert 1.0 <= timing.duration <= 2.0 + 1e-9

    def test_duration_never_below_fastest_needed_worker(
        self, small_cluster, heter_strategy
    ):
        timing = simulate_iteration(
            heter_strategy,
            small_cluster,
            samples_per_partition=70,
            rng=0,
        )
        used_times = [
            timing.completion_times[worker] for worker in timing.workers_used
        ]
        assert timing.duration == pytest.approx(max(used_times))

    def test_mismatched_cluster_and_strategy(self, small_cluster):
        strategy = naive_strategy(3)
        with pytest.raises(TimingError):
            simulate_iteration(strategy, small_cluster, samples_per_partition=10)

    def test_group_fast_path_recorded(self, small_cluster):
        from repro.coding import group_based_strategy

        strategy = group_based_strategy(
            small_cluster.estimated_throughputs,
            num_partitions=10,
            num_stragglers=1,
            rng=0,
        )
        if not strategy.groups:
            pytest.skip("no groups detected for this configuration")
        timing = simulate_iteration(
            strategy,
            small_cluster,
            samples_per_partition=70,
            network=ZeroCommunication(),
            rng=0,
        )
        assert timing.decodable
        # Either the group path fired (used_group set) or the general path
        # used at least m - s workers.
        if timing.used_group is None:
            assert len(timing.workers_used) >= strategy.num_workers - 1
