"""Unit tests for trace containers."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.simulation.trace import (
    IterationRecord,
    RunTrace,
    TraceError,
    UnknownTraceFieldWarning,
)


def make_record(iteration: int, duration: float = 1.0, loss: float = 0.5):
    return IterationRecord(
        iteration=iteration,
        duration=duration,
        train_loss=loss,
        compute_times=(0.5, 0.8),
        completion_times=(0.6, 0.9),
        workers_used=(0, 1),
    )


class TestIterationRecord:
    def test_num_workers(self):
        assert make_record(0).num_workers == 2


class TestRunTrace:
    def test_append_and_accessors(self):
        trace = RunTrace(scheme="heter_aware", cluster_name="Cluster-A")
        trace.append(make_record(0, duration=1.0, loss=2.0))
        trace.append(make_record(1, duration=2.0, loss=1.0))
        assert trace.num_iterations == 2
        assert np.allclose(trace.durations, [1.0, 2.0])
        assert np.allclose(trace.losses, [2.0, 1.0])
        assert np.allclose(trace.elapsed_times, [1.0, 3.0])
        assert trace.total_time == pytest.approx(3.0)
        assert trace.mean_iteration_time() == pytest.approx(1.5)
        assert trace.completed

    def test_rejects_out_of_order_iterations(self):
        trace = RunTrace(scheme="x", cluster_name="y")
        trace.append(make_record(3))
        with pytest.raises(TraceError):
            trace.append(make_record(3))
        with pytest.raises(TraceError):
            trace.append(make_record(1))

    def test_incomplete_run_detected(self):
        trace = RunTrace(scheme="naive", cluster_name="c")
        trace.append(make_record(0, duration=float("inf")))
        assert not trace.completed

    def test_empty_trace(self):
        trace = RunTrace(scheme="x", cluster_name="y")
        assert trace.total_time == 0.0
        assert np.isnan(trace.mean_iteration_time())

    def test_loss_curve(self):
        trace = RunTrace(scheme="x", cluster_name="y")
        trace.append(make_record(0, duration=1.0, loss=3.0))
        trace.append(make_record(1, duration=1.0, loss=2.0))
        times, losses = trace.loss_curve()
        assert np.allclose(times, [1.0, 2.0])
        assert np.allclose(losses, [3.0, 2.0])

    def test_summary_keys(self):
        trace = RunTrace(scheme="cyclic", cluster_name="Cluster-B")
        trace.append(make_record(0))
        summary = trace.summary()
        assert summary["scheme"] == "cyclic"
        assert summary["cluster"] == "Cluster-B"
        assert summary["iterations"] == 1
        assert summary["completed"] is True

    def test_summary_with_stall(self):
        trace = RunTrace(scheme="naive", cluster_name="c")
        trace.append(make_record(0, duration=float("inf")))
        summary = trace.summary()
        assert summary["completed"] is False


class TestRoundTrip:
    def make_trace(self) -> RunTrace:
        trace = RunTrace(
            scheme="heter_aware",
            cluster_name="Cluster-A",
            metadata={
                "mode": "timing_only",
                "num_workers": 2,
                "effective_total_samples": 2040,
                "total_samples": 2048,
                "custom_downstream_key": {"nested": [1, 2, 3]},
            },
        )
        trace.extend([make_record(0), make_record(1, duration=2.0)])
        return trace

    def test_every_metadata_key_survives(self):
        trace = self.make_trace()
        rebuilt = RunTrace.from_dict(trace.to_dict())
        assert rebuilt.metadata == trace.metadata
        # The SampleCountDriftWarning diagnostics specifically must survive.
        assert rebuilt.metadata["effective_total_samples"] == 2040
        assert rebuilt.metadata["num_workers"] == 2

    def test_records_survive(self):
        trace = self.make_trace()
        rebuilt = RunTrace.from_dict(trace.to_dict())
        assert rebuilt.num_iterations == trace.num_iterations
        assert rebuilt.records[1].duration == 2.0
        assert rebuilt.records[0].workers_used == (0, 1)

    def test_unknown_top_level_key_warns(self):
        data = self.make_trace().to_dict()
        data["telemetry"] = {"new": True}
        with pytest.warns(UnknownTraceFieldWarning, match="telemetry"):
            rebuilt = RunTrace.from_dict(data)
        assert rebuilt.metadata == self.make_trace().metadata

    def test_unknown_record_key_warns(self):
        data = self.make_trace().to_dict()
        data["records"][0]["queue_depth"] = 4
        with pytest.warns(UnknownTraceFieldWarning, match="queue_depth"):
            RunTrace.from_dict(data)

    def test_known_payload_round_trips_silently(self):
        data = self.make_trace().to_dict()
        with warnings.catch_warnings():
            warnings.simplefilter("error", UnknownTraceFieldWarning)
            RunTrace.from_dict(data)
