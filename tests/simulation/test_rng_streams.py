"""Unit tests for the per-component RNG streams (``rng_version=2``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.rng import (
    RNG_COMPONENTS,
    RNG_VERSIONS,
    RngStreams,
    component_seed_sequences,
)


class TestComponentSeedSequences:
    def test_one_sequence_per_component(self):
        sequences = component_seed_sequences(0)
        assert set(sequences) == set(RNG_COMPONENTS)

    def test_deterministic_in_seed(self):
        a = component_seed_sequences(7)
        b = component_seed_sequences(7)
        for name in RNG_COMPONENTS:
            assert a[name].generate_state(4).tolist() == b[name].generate_state(4).tolist()

    def test_different_seeds_differ(self):
        a = component_seed_sequences(0)["injector"].generate_state(4)
        b = component_seed_sequences(1)["injector"].generate_state(4)
        assert a.tolist() != b.tolist()

    def test_components_are_independent_streams(self):
        sequences = component_seed_sequences(0)
        states = {
            name: tuple(seq.generate_state(4).tolist())
            for name, seq in sequences.items()
        }
        assert len(set(states.values())) == len(RNG_COMPONENTS)

    def test_spawn_order_is_stable(self):
        # The component order is a reproducibility contract: child i of
        # SeedSequence(seed) always feeds component RNG_COMPONENTS[i].
        children = np.random.SeedSequence(3).spawn(len(RNG_COMPONENTS))
        sequences = component_seed_sequences(3)
        for child, name in zip(children, RNG_COMPONENTS):
            assert (
                child.generate_state(2).tolist()
                == sequences[name].generate_state(2).tolist()
            )


class TestRngStreams:
    def test_from_seed_deterministic(self):
        a = RngStreams.from_seed(5)
        b = RngStreams.from_seed(5)
        for name in RNG_COMPONENTS:
            assert np.array_equal(
                getattr(a, name).random(8), getattr(b, name).random(8)
            )

    def test_streams_differ_from_each_other(self):
        streams = RngStreams.from_seed(0)
        draws = [tuple(getattr(streams, name).random(8)) for name in RNG_COMPONENTS]
        assert len(set(draws)) == len(RNG_COMPONENTS)

    def test_training_seed_deterministic_and_bounded(self):
        one = RngStreams.from_seed(11).training_seed()
        two = RngStreams.from_seed(11).training_seed()
        assert one == two
        assert 0 <= one < 2**63 - 1

    def test_none_seed_is_fresh_entropy(self):
        a = RngStreams.from_seed(None)
        b = RngStreams.from_seed(None)
        assert not np.array_equal(a.injector.random(8), b.injector.random(8))

    def test_versions_tuple(self):
        assert RNG_VERSIONS == (1, 2)
        assert "injector" in RNG_COMPONENTS and "jitter" in RNG_COMPONENTS


@pytest.mark.parametrize("seed", [0, 1, 123456789])
def test_streams_match_their_seed_sequences(seed):
    sequences = component_seed_sequences(seed)
    streams = RngStreams.from_seed(seed)
    for name in RNG_COMPONENTS:
        expected = np.random.default_rng(sequences[name]).random(4)
        assert np.array_equal(getattr(streams, name).random(4), expected)
