"""Batched timing kernels paired against their scalar counterparts.

These are the KER001 pairing tests for ``ClusterSpec.compute_times_batch``
and ``simulate_worker_timing_arrays_batch``: the batched forms draw each
randomness component in one generator call, which (for a fixed component
stream) consumes the stream in exactly the order the per-iteration scalar
path does — so at matched seeds the batch is *bit-identical* to stacking
scalar calls, not merely statistically close.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.cluster import ClusterError, cluster_from_vcpu_counts
from repro.simulation.network import SimpleNetwork
from repro.simulation.stragglers import ArtificialDelay, NoStragglers
from repro.simulation.timing import (
    simulate_worker_timing_arrays,
    simulate_worker_timing_arrays_batch,
)


@pytest.fixture
def noisy_cluster():
    return cluster_from_vcpu_counts(
        "pairing", {2: 3, 4: 2}, compute_noise=0.15, rng=0
    )


@pytest.fixture
def workloads():
    return np.array([10.0, 5.0, 0.0, 8.0, 2.0])


class TestComputeTimesBatchPairsScalar:
    def test_bit_identical_to_stacked_scalar_calls(self, noisy_cluster, workloads):
        iterations = 6
        batch = noisy_cluster.compute_times_batch(
            workloads, iterations, rng=np.random.default_rng(7)
        )
        scalar_rng = np.random.default_rng(7)
        stacked = np.stack(
            [
                noisy_cluster.compute_times(workloads, rng=scalar_rng)
                for _ in range(iterations)
            ]
        )
        assert batch.shape == (iterations, noisy_cluster.num_workers)
        assert np.array_equal(batch, stacked)

    def test_no_rng_is_deterministic_broadcast(self, noisy_cluster, workloads):
        batch = noisy_cluster.compute_times_batch(workloads, 3)
        scalar = noisy_cluster.compute_times(workloads)
        assert np.array_equal(batch, np.stack([scalar] * 3))

    def test_heterogeneous_noise_still_pairs(self, workloads):
        cluster = cluster_from_vcpu_counts(
            "pairing-hetero", {1: 2, 2: 2, 8: 1}, compute_noise=0.3, rng=1
        )
        batch = cluster.compute_times_batch(
            workloads, 5, rng=np.random.default_rng(11)
        )
        scalar_rng = np.random.default_rng(11)
        stacked = np.stack(
            [cluster.compute_times(workloads, rng=scalar_rng) for _ in range(5)]
        )
        assert np.array_equal(batch, stacked)

    def test_rejects_nonpositive_iterations(self, noisy_cluster, workloads):
        with pytest.raises(ClusterError):
            noisy_cluster.compute_times_batch(workloads, 0)


class TestSimulateWorkerTimingArraysBatchPairsScalar:
    def test_deterministic_configuration_matches_scalar_exactly(
        self, noisy_cluster, workloads
    ):
        """With no jitter/stragglers both paths are rng-free and must agree."""
        quiet = cluster_from_vcpu_counts(
            "pairing-quiet", {2: 3, 4: 2}, compute_noise=0.0, rng=0
        )
        network = SimpleNetwork()
        compute_b, delays_b, comm_b = simulate_worker_timing_arrays_batch(
            quiet,
            workloads,
            num_iterations=4,
            injector=NoStragglers(),
            gradient_bytes=4096.0,
            network=network,
        )
        for iteration in range(4):
            compute, delays, comm = simulate_worker_timing_arrays(
                quiet,
                workloads,
                injector=NoStragglers(),
                iteration=iteration,
                gradient_bytes=4096.0,
                network=network,
            )
            assert np.array_equal(compute_b[iteration], compute)
            assert np.array_equal(delays_b[iteration], delays)
            assert np.array_equal(comm_b, comm)

    def test_jittered_batch_pairs_scalar_bitwise(self, noisy_cluster, workloads):
        """With randomness only in the jitter, batch == scalar bit-for-bit.

        ``NoStragglers`` consumes no random numbers, so the scalar path's
        single shared generator sees exactly the jitter draws — at matched
        seeds the batch's ``jitter_rng`` stream and the scalar loop consume
        the stream identically and every row must match exactly.
        """
        iterations = 8
        compute_b, delays_b, comm_b = simulate_worker_timing_arrays_batch(
            noisy_cluster,
            workloads,
            num_iterations=iterations,
            injector=NoStragglers(),
            gradient_bytes=1024.0,
            network=SimpleNetwork(),
            jitter_rng=6,
        )
        scalar_rng = np.random.default_rng(6)
        for iteration in range(iterations):
            compute, delays, comm = simulate_worker_timing_arrays(
                noisy_cluster,
                workloads,
                injector=NoStragglers(),
                iteration=iteration,
                gradient_bytes=1024.0,
                network=SimpleNetwork(),
                rng=scalar_rng,
            )
            assert np.array_equal(compute_b[iteration], compute)
            assert np.array_equal(delays_b[iteration], delays)
            assert np.array_equal(comm_b, comm)

    def test_fixed_worker_delays_pair_scalar(self, noisy_cluster, workloads):
        """A fixed-worker injector yields identical delay rows on both paths.

        (The free-choice ``ArtificialDelay`` batch draw intentionally uses a
        different stream layout — same distribution, not bit-paired — so the
        deterministic fixed-worker form is the exact-equality case.)
        """
        injector = ArtificialDelay(
            num_stragglers=2, delay_seconds=1.5, workers=(0, 3)
        )
        _, delays_b, _ = simulate_worker_timing_arrays_batch(
            noisy_cluster,
            workloads,
            num_iterations=5,
            injector=injector,
            jitter_rng=3,
        )
        for iteration in range(5):
            scalar = injector.delays(
                iteration, noisy_cluster.num_workers, np.random.default_rng(0)
            )
            assert np.array_equal(delays_b[iteration], np.asarray(scalar))
        assert np.array_equal(
            delays_b[:, [0, 3]], np.full((5, 2), 1.5)
        )
