"""Tests for the batched (``rng_version=2``) kernel path and the kernel cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding.registry import build_strategy, natural_partitions
from repro.simulation.cluster import cluster_from_vcpu_counts, uniform_cluster
from repro.simulation.network import SimpleNetwork
from repro.simulation.rng import RngStreams
from repro.simulation.stragglers import ArtificialDelay, FailStop, NoStragglers
from repro.simulation.timing import simulate_worker_timing_arrays_batch
from repro.simulation.vectorized import (
    TimingKernelCache,
    TimingTraceKernel,
    cluster_fingerprint,
    strategy_fingerprint,
)


def make_kernel(scheme: str = "heter_aware", seed: int = 0, noise: float = 0.02):
    cluster = cluster_from_vcpu_counts(
        "batch-cluster", {2: 2, 4: 2, 8: 3, 12: 1}, compute_noise=noise, rng=seed
    )
    k = natural_partitions(scheme, cluster.num_workers, 2)
    strategy = build_strategy(
        scheme,
        throughputs=cluster.estimated_throughputs,
        num_partitions=k,
        num_stragglers=1,
        rng=np.random.default_rng(seed),
    )
    kernel = TimingTraceKernel(
        strategy, cluster, samples_per_partition=max(1, 2048 // k),
        gradient_bytes=8.0 * 65536, network=SimpleNetwork(),
    )
    return kernel, strategy, cluster


class TestRunBatched:
    def test_shapes_and_determinism(self):
        kernel, _, _ = make_kernel()
        streams = RngStreams.from_seed(0)
        arrays = kernel.run_batched(
            50, injector_rng=streams.injector, jitter_rng=streams.jitter,
            injector=ArtificialDelay(1, 1.0),
        )
        assert arrays.durations.shape == (50,)
        assert arrays.compute_times.shape == (50, kernel.num_workers)
        assert arrays.completion_times.shape == (50, kernel.num_workers)
        repeat = RngStreams.from_seed(0)
        again = kernel.run_batched(
            50, injector_rng=repeat.injector, jitter_rng=repeat.jitter,
            injector=ArtificialDelay(1, 1.0),
        )
        assert np.array_equal(arrays.durations, again.durations)
        assert np.array_equal(arrays.compute_times, again.compute_times)

    def test_duration_is_prefix_completion_time(self):
        kernel, _, _ = make_kernel(scheme="cyclic")
        arrays = kernel.run_batched(30, injector_rng=0, jitter_rng=1)
        for step in range(30):
            completion = arrays.completion_times[step]
            assert arrays.durations[step] <= completion.max() + 1e-12
            # the reported duration is an actual completion time
            assert np.isclose(completion, arrays.durations[step]).any()

    def test_statistically_close_to_v1(self):
        kernel, _, _ = make_kernel()
        injector = ArtificialDelay(1, 1.0)
        v1 = kernel.run(2000, rng=0, injector=injector)
        streams = RngStreams.from_seed(0)
        v2 = kernel.run_batched(
            2000, injector_rng=streams.injector, jitter_rng=streams.jitter,
            injector=injector,
        )
        assert np.isfinite(v1.durations).all() and np.isfinite(v2.durations).all()
        assert v2.durations.mean() == pytest.approx(v1.durations.mean(), rel=0.05)
        assert v2.compute_times.mean(axis=0) == pytest.approx(
            v1.compute_times.mean(axis=0), rel=0.05
        )

    def test_failed_workers_are_trimmed(self):
        kernel, _, _ = make_kernel(scheme="cyclic")
        arrays = kernel.run_batched(
            10, injector_rng=0, jitter_rng=1, injector=FailStop({0: 0})
        )
        assert np.isinf(arrays.completion_times[:, 0]).all()
        for used in arrays.workers_used:
            assert 0 not in used

    def test_order_cache_shared_with_v1_path(self):
        kernel, _, _ = make_kernel(scheme="cyclic", noise=0.0)
        kernel.run(20, rng=0)
        cached = len(kernel._order_cache)
        assert cached > 0
        # Noise-free cluster: completion orders repeat, so the batched path
        # re-uses the memoised decisions instead of re-deriving them.
        kernel.run_batched(20, injector_rng=0, jitter_rng=1)
        assert len(kernel._order_cache) == cached

    def test_rejects_nonpositive_iterations(self):
        kernel, _, _ = make_kernel()
        with pytest.raises(ValueError, match="positive"):
            kernel.run_batched(0, injector_rng=0, jitter_rng=1)

    def test_no_jitter_cluster(self):
        cluster = uniform_cluster("flat", 5, compute_noise=0.0)
        strategy = build_strategy(
            "cyclic",
            throughputs=cluster.estimated_throughputs,
            num_partitions=5,
            num_stragglers=1,
            rng=np.random.default_rng(0),
        )
        kernel = TimingTraceKernel(strategy, cluster, samples_per_partition=16)
        arrays = kernel.run_batched(6, injector_rng=0, jitter_rng=1)
        assert np.array_equal(arrays.compute_times[0], arrays.compute_times[-1])

    def test_injector_override_beats_constructor_injector(self):
        kernel, _, _ = make_kernel()
        assert isinstance(kernel.injector, NoStragglers)
        arrays = kernel.run_batched(
            5, injector_rng=0, jitter_rng=1,
            injector=ArtificialDelay(1, 100.0, workers=(2,)),
        )
        assert (arrays.completion_times[:, 2] > 100.0).all()


class TestBatchTimingArrays:
    def test_component_streams_do_not_interleave(self):
        # Same injector stream with a different jitter stream must produce
        # identical delays: the components no longer share a generator.
        cluster = cluster_from_vcpu_counts(
            "c", {2: 2, 4: 2}, compute_noise=0.02, rng=0
        )
        workloads = np.full(cluster.num_workers, 32.0)
        injector = ArtificialDelay(2, 1.0)
        _, delays_a, _ = simulate_worker_timing_arrays_batch(
            cluster, workloads, 25, injector=injector,
            injector_rng=7, jitter_rng=1,
        )
        _, delays_b, _ = simulate_worker_timing_arrays_batch(
            cluster, workloads, 25, injector=injector,
            injector_rng=7, jitter_rng=99,
        )
        assert np.array_equal(delays_a, delays_b)

    def test_comm_vector_matches_network(self):
        cluster = uniform_cluster("flat", 4, compute_noise=0.0)
        workloads = np.array([16.0, 0.0, 16.0, 16.0])
        _, _, comm = simulate_worker_timing_arrays_batch(
            cluster, workloads, 3, gradient_bytes=1.25e8,
            network=SimpleNetwork(latency_seconds=0.0),
        )
        assert np.array_equal(comm, [1.0, 0.0, 1.0, 1.0])


class TestFingerprints:
    def test_identical_builds_share_fingerprints(self):
        _, strategy_a, cluster_a = make_kernel(seed=0)
        _, strategy_b, cluster_b = make_kernel(seed=0)
        assert strategy_fingerprint(strategy_a) == strategy_fingerprint(strategy_b)
        assert cluster_fingerprint(cluster_a) == cluster_fingerprint(cluster_b)

    def test_different_builds_differ(self):
        _, strategy_a, cluster_a = make_kernel(seed=0)
        _, strategy_b, cluster_b = make_kernel(seed=1)
        assert strategy_fingerprint(strategy_a) != strategy_fingerprint(strategy_b)
        assert cluster_fingerprint(cluster_a) != cluster_fingerprint(cluster_b)


class TestTimingKernelCache:
    def test_hit_on_identical_configuration(self):
        cache = TimingKernelCache()
        _, strategy, cluster = make_kernel(seed=0)
        one = cache.get_or_build(strategy, cluster, 64, gradient_bytes=1.0)
        _, strategy_again, _ = make_kernel(seed=0)
        two = cache.get_or_build(strategy_again, cluster, 64, gradient_bytes=1.0)
        assert one is two
        assert cache.hits == 1 and cache.misses == 1

    def test_miss_on_different_workload_or_network(self):
        cache = TimingKernelCache()
        _, strategy, cluster = make_kernel(seed=0)
        cache.get_or_build(strategy, cluster, 64)
        cache.get_or_build(strategy, cluster, 128)
        cache.get_or_build(strategy, cluster, 64, network=SimpleNetwork())
        assert cache.misses == 3 and cache.hits == 0

    def test_nearby_network_parameters_do_not_collide(self):
        # Regression: keying on network.describe() rounded the parameters
        # (0.1 ms / 0.01 Gbit/s display precision), so nearby latencies
        # collided and a cache hit returned wrong communication times.
        cache = TimingKernelCache()
        _, strategy, cluster = make_kernel(seed=0)
        a = cache.get_or_build(
            strategy, cluster, 64,
            network=SimpleNetwork(latency_seconds=0.005),
            gradient_bytes=1024.0,
        )
        b = cache.get_or_build(
            strategy, cluster, 64,
            network=SimpleNetwork(latency_seconds=0.00504),
            gradient_bytes=1024.0,
        )
        assert a is not b
        assert not np.array_equal(a._comm, b._comm)
        # Equal parameters in a fresh model instance still hit.
        again = cache.get_or_build(
            strategy, cluster, 64,
            network=SimpleNetwork(latency_seconds=0.005),
            gradient_bytes=1024.0,
        )
        assert again is a

    def test_lru_eviction(self):
        cache = TimingKernelCache(maxsize=1)
        _, strategy, cluster = make_kernel(seed=0)
        first = cache.get_or_build(strategy, cluster, 64)
        cache.get_or_build(strategy, cluster, 128)
        assert len(cache) == 1
        again = cache.get_or_build(strategy, cluster, 64)
        assert again is not first  # evicted and rebuilt

    def test_cached_kernel_results_identical_to_fresh(self):
        cache = TimingKernelCache()
        _, strategy, cluster = make_kernel(seed=0)
        kernel = cache.get_or_build(strategy, cluster, 64, gradient_bytes=8.0)
        warm = cache.get_or_build(strategy, cluster, 64, gradient_bytes=8.0)
        fresh = TimingTraceKernel(
            strategy, cluster, samples_per_partition=64, gradient_bytes=8.0
        )
        injector = ArtificialDelay(1, 1.0)
        assert np.array_equal(
            warm.run(40, rng=0, injector=injector).durations,
            fresh.run(40, rng=0, injector=injector).durations,
        )
        assert kernel is warm
