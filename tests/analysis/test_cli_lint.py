"""CLI-level tests for ``repro lint`` (argument wiring and exit codes)."""

from __future__ import annotations

import json

from repro.cli import build_parser, main

DIRTY = {
    "pkg/mod.py": (
        "import numpy as np\n"
        "from repro._reference import anything\n\n"
        "g = np.random.default_rng()\n"
    )
}

CLEAN = {"pkg/ok.py": "x = 1\n"}


class TestParser:
    def test_lint_parses_with_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.command == "lint"
        assert args.paths == ["src"]
        assert args.format == "text"

    def test_lint_parses_all_flags(self):
        args = build_parser().parse_args(
            [
                "lint", "src", "tools",
                "--select", "RNG001,KER001",
                "--format", "json",
                "--baseline", "b.json",
                "--tests-root", "tests",
            ]
        )
        assert args.paths == ["src", "tools"]
        assert args.select == "RNG001,KER001"


class TestExitCodes:
    def test_clean_tree_exits_zero(self, write_tree, capsys):
        root = write_tree(CLEAN)
        assert main(["lint", str(root)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, write_tree, capsys):
        root = write_tree(DIRTY)
        assert main(["lint", str(root)]) == 1
        out = capsys.readouterr().out
        assert "RNG001" in out and "IMP001" in out

    def test_usage_errors_exit_two(self, write_tree, capsys):
        root = write_tree(CLEAN)
        assert main(["lint", str(root), "--select", "NOPE01"]) == 2
        assert "repro lint: error:" in capsys.readouterr().out
        assert main(["lint", "no/such/dir"]) == 2


class TestFlags:
    def test_select_limits_findings(self, write_tree, capsys):
        root = write_tree(DIRTY)
        assert main(["lint", str(root), "--select", "IMP001"]) == 1
        out = capsys.readouterr().out
        assert "IMP001" in out and "RNG001" not in out

    def test_ignore_can_make_tree_clean(self, write_tree, capsys):
        root = write_tree(DIRTY)
        code = main(["lint", str(root), "--ignore", "RNG001,IMP001"])
        assert code == 0

    def test_json_format(self, write_tree, capsys):
        root = write_tree(DIRTY)
        assert main(["lint", str(root), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"] == {"IMP001": 1, "RNG001": 1}

    def test_output_writes_report_file(self, write_tree, tmp_path, capsys):
        root = write_tree(DIRTY)
        out_file = tmp_path / "report.json"
        code = main(
            ["lint", str(root), "--format", "json", "--output", str(out_file)]
        )
        assert code == 1
        payload = json.loads(out_file.read_text(encoding="utf-8"))
        assert payload["summary"]["RNG001"] == 1
        # stdout falls back to the text rendering plus a pointer
        out = capsys.readouterr().out
        assert f"wrote {out_file}" in out

    def test_baseline_round_trip(self, write_tree, tmp_path, capsys):
        root = write_tree(DIRTY)
        baseline = tmp_path / "baseline.json"
        assert main(["lint", str(root), "--update-baseline", str(baseline)]) == 0
        assert "wrote baseline with 2 finding(s)" in capsys.readouterr().out
        assert main(["lint", str(root), "--baseline", str(baseline)]) == 0
        assert "2 baselined" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RNG001", "RNG002", "REG001", "SPEC001", "KER001", "IMP001"):
            assert rule_id in out
