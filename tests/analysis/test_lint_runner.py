"""Runner-level behaviour: selection, baselines, parse errors, formats."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    LintError,
    format_json,
    format_text,
    lint_paths,
    write_baseline,
)
from repro.analysis.runner import REPORT_FORMAT_VERSION
from repro._registry import RegistryError

DIRTY = {
    "pkg/mod.py": """
    import numpy as np
    from repro._reference import anything

    g = np.random.default_rng()
    """
}


def rules_of(report):
    return [finding.rule for finding in report.findings]


class TestSelection:
    def test_select_restricts_rules(self, lint_tree):
        report = lint_tree(DIRTY, select=["RNG001"])
        assert report.rules_run == ("RNG001",)
        assert rules_of(report) == ["RNG001"]

    def test_ignore_drops_rules(self, lint_tree):
        report = lint_tree(DIRTY, ignore=["IMP001"])
        assert "IMP001" not in report.rules_run
        assert rules_of(report) == ["RNG001"]

    def test_unknown_rule_id_raises(self, lint_tree):
        with pytest.raises(RegistryError):
            lint_tree(DIRTY, select=["RNG999"])

    def test_missing_path_raises(self):
        with pytest.raises(LintError):
            lint_paths(["definitely/not/a/path"])


class TestParseErrors:
    def test_syntax_error_becomes_parse_finding(self, lint_tree):
        report = lint_tree({"pkg/broken.py": "def f(:\n    pass\n"})
        assert rules_of(report) == ["PARSE"]
        assert report.exit_code == 1
        assert "does not parse" in report.findings[0].message


class TestBaseline:
    def test_baselined_findings_are_subtracted(self, lint_tree, tmp_path):
        first = lint_tree(DIRTY)
        assert len(first.findings) == 2
        baseline = tmp_path / "baseline.json"
        write_baseline(first, baseline)

        second = lint_tree(DIRTY, baseline=baseline)
        assert second.findings == []
        assert second.baselined == 2
        assert second.exit_code == 0

    def test_baseline_is_location_independent(self, lint_tree, tmp_path):
        """Shifting a finding to a new line keeps it baselined."""
        first = lint_tree(DIRTY)
        baseline = tmp_path / "baseline.json"
        write_baseline(first, baseline)

        shifted = {
            "pkg/mod.py": "\n\n" + "import numpy as np\n"
            "from repro._reference import anything\n\n"
            "g = np.random.default_rng()\n"
        }
        second = lint_tree(shifted, baseline=baseline)
        assert second.findings == []
        assert second.baselined == 2

    def test_new_findings_survive_the_baseline(self, lint_tree, tmp_path):
        first = lint_tree({"pkg/mod.py": DIRTY["pkg/mod.py"]})
        baseline = tmp_path / "baseline.json"
        write_baseline(first, baseline)

        grown = dict(DIRTY)
        grown["pkg/other.py"] = "import numpy as np\n\nh = np.random.rand(3)\n"
        second = lint_tree(grown, baseline=baseline)
        assert rules_of(second) == ["RNG001"]
        assert "pkg/other.py" in second.findings[0].path

    def test_bad_baseline_file_raises(self, lint_tree, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{\"nope\": 1}", encoding="utf-8")
        with pytest.raises(LintError):
            lint_tree(DIRTY, baseline=bogus)
        with pytest.raises(LintError):
            lint_tree(DIRTY, baseline=tmp_path / "missing.json")


class TestFormats:
    def test_text_format_lists_findings_and_summary(self, lint_tree):
        report = lint_tree(DIRTY)
        text = format_text(report)
        lines = text.splitlines()
        assert any("RNG001 [error]" in line for line in lines)
        assert any("IMP001 [error]" in line for line in lines)
        assert lines[-1].startswith("2 finding(s) in 1 file(s)")

    def test_json_format_shape(self, lint_tree):
        report = lint_tree(DIRTY)
        payload = json.loads(format_json(report))
        assert payload["format_version"] == REPORT_FORMAT_VERSION
        assert payload["files_scanned"] == 1
        assert set(payload["summary"]) == {"RNG001", "IMP001"}
        assert payload["summary"]["RNG001"] == 1
        finding = payload["findings"][0]
        assert set(finding) == {
            "path", "line", "col", "rule", "severity", "message"
        }

    def test_clean_report_exit_code_zero(self, lint_tree):
        report = lint_tree({"pkg/ok.py": "x = 1\n"})
        assert report.exit_code == 0
        assert format_text(report).startswith("0 finding(s)")
