"""Shared fixtures for the ``repro.analysis`` lint tests.

Rules are path-sensitive (RNG002 only fires under ``simulation/`` etc., and
KER001 cross-references a ``tests/`` tree), so the fixtures build small
throwaway project trees under ``tmp_path`` and run :func:`lint_paths` over
them.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import lint_paths


@pytest.fixture
def lint_tree(tmp_path):
    """Write ``{relpath: source}`` files and lint them.

    Returns ``run(files, **kwargs) -> LintReport``; sources are dedented so
    tests can use indented triple-quoted literals.  ``kwargs`` pass through
    to :func:`lint_paths` (``select``, ``ignore``, ``tests_root``,
    ``baseline``).
    """

    def run(files: dict[str, str], **kwargs):
        root = tmp_path / "proj"
        for rel, source in files.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source), encoding="utf-8")
        # Most rule tests don't care about KER001; give them an empty test
        # tree so the rule runs deterministically instead of discovering
        # whatever `tests/` directory pytest happens to be running from.
        if "tests_root" not in kwargs:
            empty = tmp_path / "no_tests"
            empty.mkdir(exist_ok=True)
            kwargs["tests_root"] = empty
        return lint_paths([root], **kwargs)

    return run


@pytest.fixture
def write_tree(tmp_path):
    """Just write the files and return the root (for CLI-level tests)."""

    def write(files: dict[str, str], root_name: str = "proj") -> Path:
        root = tmp_path / root_name
        for rel, source in files.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source), encoding="utf-8")
        return root

    return write
