"""Per-rule unit tests: each rule catches its seeded violation and stays
quiet on the sanctioned idioms it must not flag."""

from __future__ import annotations


def rule_ids(report) -> list[str]:
    return [finding.rule for finding in report.findings]


class TestRNG001:
    def test_flags_legacy_global_state_calls(self, lint_tree):
        report = lint_tree(
            {
                "pkg/mod.py": """
                import numpy as np

                def f():
                    np.random.seed(0)
                    return np.random.rand(3)
                """
            }
        )
        assert rule_ids(report) == ["RNG001", "RNG001"]
        assert "hidden global RandomState" in report.findings[0].message

    def test_flags_entropy_seeded_default_rng(self, lint_tree):
        report = lint_tree(
            {
                "pkg/mod.py": """
                from numpy.random import default_rng

                a = default_rng()
                b = default_rng(None)
                """
            }
        )
        assert rule_ids(report) == ["RNG001", "RNG001"]

    def test_flags_randomstate_reference(self, lint_tree):
        report = lint_tree(
            {
                "pkg/mod.py": """
                import numpy

                LEGACY = numpy.random.RandomState
                """
            }
        )
        assert rule_ids(report) == ["RNG001"]

    def test_seed_coercion_is_legal(self, lint_tree):
        """default_rng(seed) / default_rng(rng) is the package-wide idiom."""
        report = lint_tree(
            {
                "pkg/mod.py": """
                import numpy as np

                def f(seed, rng=None):
                    g = np.random.default_rng(seed)
                    h = np.random.default_rng(rng or 0)
                    return g.normal(size=3) + h.normal(size=3)
                """
            }
        )
        assert report.findings == []

    def test_rng_module_and_reference_are_exempt(self, lint_tree):
        source = """
        import numpy as np

        g = np.random.default_rng()
        """
        report = lint_tree(
            {"simulation/rng.py": source, "pkg/_reference.py": source}
        )
        assert report.findings == []


class TestRNG002:
    def test_flags_wall_clock_in_scoped_dirs(self, lint_tree):
        report = lint_tree(
            {
                "simulation/mod.py": """
                import time

                def stamp():
                    return time.time()
                """
            }
        )
        assert rule_ids(report) == ["RNG002"]
        assert "ambient nondeterminism" in report.findings[0].message

    def test_flags_datetime_now_and_urandom(self, lint_tree):
        report = lint_tree(
            {
                "api/mod.py": """
                import os
                from datetime import datetime

                def f():
                    return datetime.now(), os.urandom(8)
                """
            }
        )
        assert rule_ids(report) == ["RNG002", "RNG002"]

    def test_flags_set_iteration(self, lint_tree):
        report = lint_tree(
            {
                "coding/mod.py": """
                def f(items):
                    out = []
                    for x in set(items):
                        out.append(x)
                    return out, list({1, 2, 3})
                """
            }
        )
        assert rule_ids(report) == ["RNG002", "RNG002"]
        assert "hash-iteration order" in report.findings[0].message

    def test_sorted_set_is_legal(self, lint_tree):
        report = lint_tree(
            {
                "protocols/mod.py": """
                def f(items):
                    return [x for x in sorted(set(items))]
                """
            }
        )
        assert report.findings == []

    def test_out_of_scope_dirs_are_ignored(self, lint_tree):
        """The same code outside simulation/protocols/coding/api is fine."""
        report = lint_tree(
            {
                "experiments/mod.py": """
                import time

                def stamp():
                    return time.time()
                """
            }
        )
        assert report.findings == []


class TestREG001:
    def test_flags_unregistered_subclass(self, lint_tree):
        report = lint_tree(
            {
                "pkg/mod.py": """
                from repro.simulation.stragglers import StragglerInjector

                class OrphanInjector(StragglerInjector):
                    def delays(self, iteration, num_workers, rng):
                        return [0.0] * num_workers
                """
            }
        )
        assert rule_ids(report) == ["REG001"]
        assert "OrphanInjector" in report.findings[0].message

    def test_decorated_subclass_is_registered(self, lint_tree):
        report = lint_tree(
            {
                "pkg/mod.py": """
                from repro.simulation.stragglers import StragglerInjector
                from repro.api.builders import register_straggler_model

                @register_straggler_model("quiet")
                class QuietInjector(StragglerInjector):
                    def delays(self, iteration, num_workers, rng):
                        return [0.0] * num_workers
                """
            }
        )
        assert report.findings == []

    def test_registrar_module_reference_counts(self, lint_tree):
        """`REGISTRY.add("x", lambda: Cls())` in another module registers Cls."""
        report = lint_tree(
            {
                "pkg/mod.py": """
                from repro.simulation.network import CommunicationModel

                class LumpyNetwork(CommunicationModel):
                    def transfer_time(self, gradient_bytes):
                        return 1.0
                """,
                "pkg/builders.py": """
                from repro._registry import NETWORK_MODELS

                from .mod import LumpyNetwork

                NETWORK_MODELS.add("lumpy", lambda: LumpyNetwork())
                """,
            }
        )
        assert report.findings == []

    def test_abstract_and_private_subclasses_are_exempt(self, lint_tree):
        report = lint_tree(
            {
                "pkg/mod.py": """
                from abc import abstractmethod

                from repro.simulation.stragglers import StragglerInjector

                class IntermediateInjector(StragglerInjector):
                    @abstractmethod
                    def extra_hook(self):
                        ...

                class _LocalHelper(StragglerInjector):
                    def delays(self, iteration, num_workers, rng):
                        return [0.0] * num_workers
                """
            }
        )
        assert report.findings == []

    def test_transitive_subclasses_are_tracked(self, lint_tree):
        """Subclass-of-a-subclass of a root still needs registration."""
        report = lint_tree(
            {
                "pkg/mod.py": """
                from repro.simulation.network import CommunicationModel

                class _BaseNetwork(CommunicationModel):
                    pass

                class DeepOrphanNetwork(_BaseNetwork):
                    def transfer_time(self, gradient_bytes):
                        return 1.0
                """
            }
        )
        assert rule_ids(report) == ["REG001"]
        assert "DeepOrphanNetwork" in report.findings[0].message


class TestSPEC001:
    def test_flags_attribute_assignment_on_constructed_spec(self, lint_tree):
        report = lint_tree(
            {
                "pkg/mod.py": """
                from repro.api.spec import RunSpec

                def tweak():
                    spec = RunSpec(scheme="heter_aware")
                    spec.seed = 7
                    return spec
                """
            }
        )
        assert rule_ids(report) == ["SPEC001"]
        assert "RunSpec.replace" in report.findings[0].message

    def test_flags_annotated_parameter_mutation(self, lint_tree):
        report = lint_tree(
            {
                "pkg/mod.py": """
                from repro.api.spec import RunSpec

                def tweak(spec: RunSpec) -> RunSpec:
                    spec.iterations += 1
                    return spec
                """
            }
        )
        assert rule_ids(report) == ["SPEC001"]

    def test_flags_setattr_and_object_setattr(self, lint_tree):
        report = lint_tree(
            {
                "pkg/mod.py": """
                from repro.api.spec import RunSpec

                def tweak(spec: RunSpec):
                    setattr(spec, "seed", 1)
                    object.__setattr__(spec, "seed", 2)
                """
            }
        )
        assert rule_ids(report) == ["SPEC001", "SPEC001"]

    def test_object_setattr_on_self_is_legal(self, lint_tree):
        """The frozen-dataclass __post_init__ idiom must stay allowed."""
        report = lint_tree(
            {
                "pkg/mod.py": """
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class Other:
                    value: int

                    def __post_init__(self):
                        object.__setattr__(self, "value", int(self.value))
                """
            }
        )
        assert report.findings == []

    def test_replace_idiom_is_legal(self, lint_tree):
        report = lint_tree(
            {
                "pkg/mod.py": """
                from repro.api.spec import RunSpec

                def tweak(spec: RunSpec) -> RunSpec:
                    return spec.replace(seed=7)
                """
            }
        )
        assert report.findings == []

    def test_spec_module_itself_is_exempt(self, lint_tree):
        report = lint_tree(
            {
                "api/spec.py": """
                class RunSpec:
                    def __post_init__(self):
                        object.__setattr__(self, "seed", 0)
                """
            }
        )
        assert report.findings == []


class TestKER001:
    KERNEL = """
    def compute_batch(values):
        return [v * 2 for v in values]

    def compute(value):
        return value * 2
    """

    def test_flags_unpaired_kernel(self, lint_tree, tmp_path):
        tests_root = tmp_path / "paired_tests"
        tests_root.mkdir()
        (tests_root / "test_other.py").write_text(
            "def test_nothing():\n    assert True\n", encoding="utf-8"
        )
        report = lint_tree({"pkg/mod.py": self.KERNEL}, tests_root=tests_root)
        assert rule_ids(report) == ["KER001"]
        assert "compute_batch" in report.findings[0].message
        assert "'compute'" in report.findings[0].message

    def test_paired_kernel_is_clean(self, lint_tree, tmp_path):
        tests_root = tmp_path / "paired_tests"
        tests_root.mkdir()
        (tests_root / "test_pairing.py").write_text(
            "from pkg.mod import compute, compute_batch\n\n"
            "def test_pairs():\n"
            "    assert compute_batch([2]) == [compute(2)]\n",
            encoding="utf-8",
        )
        report = lint_tree({"pkg/mod.py": self.KERNEL}, tests_root=tests_root)
        assert report.findings == []

    def test_reference_pairing_counts(self, lint_tree, tmp_path):
        """Pairing against repro._reference instead of the scalar is enough."""
        tests_root = tmp_path / "paired_tests"
        tests_root.mkdir()
        (tests_root / "test_pairing.py").write_text(
            "from pkg.mod import compute_batch\n"
            "from repro import _reference\n\n"
            "def test_pairs():\n"
            "    assert compute_batch([2]) == [_reference.compute(2)]\n",
            encoding="utf-8",
        )
        report = lint_tree({"pkg/mod.py": self.KERNEL}, tests_root=tests_root)
        assert report.findings == []

    def test_private_kernels_are_exempt(self, lint_tree, tmp_path):
        tests_root = tmp_path / "paired_tests"
        tests_root.mkdir()
        report = lint_tree(
            {
                "pkg/mod.py": """
                def _compute_batch(values):
                    return [v * 2 for v in values]
                """
            },
            tests_root=tests_root,
        )
        assert report.findings == []

    def test_no_test_tree_skips_with_note(self, write_tree, monkeypatch, tmp_path):
        from repro.analysis import lint_paths

        root = write_tree({"pkg/mod.py": self.KERNEL}, root_name="isolated")
        # Auto-discovery checks cwd's tests/ first; run from the bare tmp
        # tree so there is genuinely nothing to find.
        monkeypatch.chdir(tmp_path)
        report = lint_paths([root])
        assert report.findings == []
        assert any("KER001 skipped" in note for note in report.notes)


class TestIMP001:
    def test_flags_reference_imports(self, lint_tree):
        report = lint_tree(
            {
                "pkg/mod.py": """
                from repro._reference import compute_times as ref_compute
                import repro._reference
                """
            }
        )
        assert rule_ids(report) == ["IMP001", "IMP001"]
        assert "frozen reference implementations" in report.findings[0].message

    def test_from_package_import_spelling_flagged(self, lint_tree):
        """`from repro import _reference` must not slip past the rule."""
        report = lint_tree(
            {
                "pkg/mod.py": """
                from repro import _reference as ref
                """
            }
        )
        assert rule_ids(report) == ["IMP001"]

    def test_tests_dirs_may_import_reference(self, lint_tree):
        report = lint_tree(
            {
                "tests/test_mod.py": """
                from repro._reference import compute_times
                """
            }
        )
        assert report.findings == []


class TestSuppression:
    def test_inline_disable(self, lint_tree):
        report = lint_tree(
            {
                "pkg/mod.py": """
                import numpy as np

                g = np.random.default_rng()  # repro-lint: disable=RNG001
                """
            }
        )
        assert report.findings == []

    def test_preceding_comment_line_disable(self, lint_tree):
        report = lint_tree(
            {
                "pkg/mod.py": """
                import numpy as np

                # this one is deliberate
                # repro-lint: disable=RNG001
                g = np.random.default_rng()
                """
            }
        )
        assert report.findings == []

    def test_disable_wrong_rule_does_not_suppress(self, lint_tree):
        report = lint_tree(
            {
                "pkg/mod.py": """
                import numpy as np

                g = np.random.default_rng()  # repro-lint: disable=KER001
                """
            }
        )
        assert rule_ids(report) == ["RNG001"]

    def test_disable_file(self, lint_tree):
        report = lint_tree(
            {
                "pkg/mod.py": """
                # repro-lint: disable-file=RNG001
                import numpy as np

                a = np.random.default_rng()
                b = np.random.default_rng(None)
                """
            }
        )
        assert report.findings == []

    def test_wildcard_disable(self, lint_tree):
        report = lint_tree(
            {
                "pkg/mod.py": """
                import numpy as np

                g = np.random.default_rng()  # repro-lint: disable=*
                """
            }
        )
        assert report.findings == []
