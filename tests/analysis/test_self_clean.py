"""The repo's own source must be lint-clean at HEAD.

This is the acceptance gate the CI lint job enforces; keeping it in the
tier-1 suite means a PR cannot land a new violation (or a rule that flags
existing code) without either fixing it or adding an explicit, commented
suppression.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_is_lint_clean():
    report = lint_paths(
        [REPO_ROOT / "src"], tests_root=REPO_ROOT / "tests"
    )
    rendered = "\n".join(
        f"{f.location()}: {f.rule} {f.message}" for f in report.findings
    )
    assert report.findings == [], f"repro lint src is not clean:\n{rendered}"
    assert report.exit_code == 0


def test_all_six_rules_are_active():
    report = lint_paths(
        [REPO_ROOT / "src"], tests_root=REPO_ROOT / "tests"
    )
    assert set(report.rules_run) >= {
        "RNG001", "RNG002", "REG001", "SPEC001", "KER001", "IMP001"
    }
    # KER001 must have actually run (found the tests tree), not skipped
    assert not any("KER001 skipped" in note for note in report.notes)
