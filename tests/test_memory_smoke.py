"""Memory smoke check: columnar traces must not regress to record objects.

A 10k-iteration timing trace stored column-first costs a handful of numpy
arrays (~2 MB for an 8-worker cluster); materializing one
``IterationRecord`` per iteration costs several times that in Python-object
overhead.  This test pins the peak allocation of the end-to-end
``measure_timing_trace`` path so a regression that sneaks per-iteration
record construction back into the hot path fails loudly in CI.
"""

from __future__ import annotations

import tracemalloc
import warnings

from repro.experiments.clusters import build_cluster
from repro.experiments.common import SampleCountDriftWarning, measure_timing_trace

NUM_ITERATIONS = 10_000

#: Peak-allocation budget for the 10k-iteration run below.  The columnar
#: trace plus the kernel's transient batch arrays measure ~4.5 MB on an
#: 8-worker cluster; the budget leaves headroom for allocator noise while
#: staying far below what 10k materialized records would add (~10+ MB).
PEAK_BUDGET_BYTES = 12 * 1024 * 1024


class TestTraceMemorySmoke:
    def test_10k_iteration_trace_stays_columnar(self):
        cluster = build_cluster("Cluster-A", rng=0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", SampleCountDriftWarning)
            # Warm imports/caches outside the measurement window.
            measure_timing_trace(
                "heter_aware", cluster, num_stragglers=1, total_samples=2048,
                num_iterations=10, seed=0, rng_version=2, kernel_cache=False,
            )
            tracemalloc.start()
            try:
                trace = measure_timing_trace(
                    "heter_aware", cluster, num_stragglers=1, total_samples=2048,
                    num_iterations=NUM_ITERATIONS, seed=0, rng_version=2,
                    kernel_cache=False,
                )
                _, peak = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()
        assert trace.num_iterations == NUM_ITERATIONS
        # The records view must stay unmaterialized: nothing in the
        # measurement path may have touched trace.records.
        assert trace._records_cache is None
        assert peak < PEAK_BUDGET_BYTES, (
            f"peak allocation {peak / 1e6:.1f} MB exceeds the "
            f"{PEAK_BUDGET_BYTES / 1e6:.1f} MB budget — did per-iteration "
            "record objects sneak back into the timing path?"
        )

    def test_records_view_still_materializes_on_demand(self):
        cluster = build_cluster("Cluster-A", rng=0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", SampleCountDriftWarning)
            trace = measure_timing_trace(
                "heter_aware", cluster, num_stragglers=1, total_samples=2048,
                num_iterations=50, seed=0, rng_version=2, kernel_cache=False,
            )
        records = trace.records
        assert len(records) == 50
        assert trace._records_cache is not None
        assert trace.records[0] is records[0]  # materialized once
