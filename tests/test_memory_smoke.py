"""Memory smoke check: columnar traces must not regress to record objects.

A 10k-iteration timing trace stored column-first costs a handful of numpy
arrays (~2 MB for an 8-worker cluster); materializing one
``IterationRecord`` per iteration costs several times that in Python-object
overhead.  This test pins the peak allocation of the end-to-end
``measure_timing_trace`` path so a regression that sneaks per-iteration
record construction back into the hot path fails loudly in CI.
"""

from __future__ import annotations

import tracemalloc
import warnings

import numpy as np
import pytest

from repro.experiments.clusters import build_cluster
from repro.experiments.common import SampleCountDriftWarning, measure_timing_trace
from repro.learning.optimizers import SGD, Adam, MomentumSGD

NUM_ITERATIONS = 10_000

#: Peak-allocation budget for the 10k-iteration run below.  The columnar
#: trace plus the kernel's transient batch arrays measure ~4.5 MB on an
#: 8-worker cluster; the budget leaves headroom for allocator noise while
#: staying far below what 10k materialized records would add (~10+ MB).
PEAK_BUDGET_BYTES = 12 * 1024 * 1024


class TestTraceMemorySmoke:
    def test_10k_iteration_trace_stays_columnar(self):
        cluster = build_cluster("Cluster-A", rng=0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", SampleCountDriftWarning)
            # Warm imports/caches outside the measurement window.
            measure_timing_trace(
                "heter_aware", cluster, num_stragglers=1, total_samples=2048,
                num_iterations=10, seed=0, rng_version=2, kernel_cache=False,
            )
            tracemalloc.start()
            try:
                trace = measure_timing_trace(
                    "heter_aware", cluster, num_stragglers=1, total_samples=2048,
                    num_iterations=NUM_ITERATIONS, seed=0, rng_version=2,
                    kernel_cache=False,
                )
                _, peak = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()
        assert trace.num_iterations == NUM_ITERATIONS
        # The records view must stay unmaterialized: nothing in the
        # measurement path may have touched trace.records.
        assert trace._records_cache is None
        assert peak < PEAK_BUDGET_BYTES, (
            f"peak allocation {peak / 1e6:.1f} MB exceeds the "
            f"{PEAK_BUDGET_BYTES / 1e6:.1f} MB budget — did per-iteration "
            "record objects sneak back into the timing path?"
        )

    def test_records_view_still_materializes_on_demand(self):
        cluster = build_cluster("Cluster-A", rng=0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", SampleCountDriftWarning)
            trace = measure_timing_trace(
                "heter_aware", cluster, num_stragglers=1, total_samples=2048,
                num_iterations=50, seed=0, rng_version=2, kernel_cache=False,
            )
        records = trace.records
        assert len(records) == 50
        assert trace._records_cache is not None
        assert trace.records[0] is records[0]  # materialized once


class TestOptimizerStepInplaceAllocations:
    """The fused in-place kernels must not allocate in steady state.

    Each optimiser is warmed for two steps (the first step builds the moment
    and scratch buffers), then 50 further ``step_inplace`` calls run under
    ``tracemalloc``.  A copy-on-write fallback — or any per-step temporary of
    parameter size — would allocate ``O(steps * nbytes)``; the budget below
    is a small fraction of ONE parameter buffer, so even a single full-size
    temporary per step fails loudly.
    """

    NUM_PARAMETERS = 1 << 18  # 2 MB of float64 parameters
    STEPS = 50

    @pytest.mark.parametrize(
        "factory, budget_fraction",
        [
            # SGD documents exactly one transient temporary (lr * g) per
            # step; the stateful optimisers reuse scratch buffers and must
            # stay strictly allocation-free.
            (lambda: SGD(learning_rate=0.1), 1.5),
            (lambda: MomentumSGD(learning_rate=0.05, momentum=0.9), 0.25),
            (
                lambda: MomentumSGD(
                    learning_rate=0.05, momentum=0.9, nesterov=True
                ),
                0.25,
            ),
            (lambda: Adam(learning_rate=0.01), 0.25),
        ],
        ids=["sgd", "momentum", "nesterov", "adam"],
    )
    def test_steady_state_step_is_allocation_free(self, factory, budget_fraction):
        optimizer = factory()
        parameters = np.zeros(self.NUM_PARAMETERS)
        gradient = np.random.default_rng(0).normal(size=self.NUM_PARAMETERS)
        buffer_bytes = parameters.nbytes
        for _ in range(2):  # build moment/scratch buffers outside the window
            optimizer.step_inplace(parameters, gradient)
        tracemalloc.start()
        try:
            for _ in range(self.STEPS):
                returned = optimizer.step_inplace(parameters, gradient)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert returned is parameters
        assert peak < buffer_bytes * budget_fraction, (
            f"step_inplace allocated {peak / 1e6:.2f} MB peak over "
            f"{self.STEPS} steps on a {buffer_bytes / 1e6:.2f} MB parameter "
            "vector — did the copy-on-write fallback sneak back in?"
        )
