"""Smoke tests for the ``repro.bench`` module and its CLI subcommand."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    HEADLINE_BENCH,
    _bench_batch_gradients,
    _bench_encode,
    _bench_prefix_search,
    format_bench,
    write_bench,
)

EXPECTED_KEYS = {
    "name",
    "description",
    "baseline_seconds",
    "current_seconds",
    "speedup",
    "meta",
}


def tiny_payload() -> dict:
    """A bench payload built from the cheapest benchmarks only."""
    benches = [
        _bench_encode(gradient_size=256, repeats=1, seed=0),
        _bench_batch_gradients(num_samples=256, repeats=1, seed=0),
        _bench_prefix_search(orders=16, repeats=1, seed=0),
    ]
    headline = benches[0]
    return {
        "label": "test",
        "created_unix": 0.0,
        "smoke": True,
        "seed": 0,
        "python": "x",
        "numpy": "y",
        "machine": "z",
        "headline": {"name": HEADLINE_BENCH, "speedup": headline["speedup"]},
        "benches": benches,
    }


class TestBenchEntries:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: _bench_encode(gradient_size=256, repeats=1, seed=0),
            lambda: _bench_batch_gradients(num_samples=256, repeats=1, seed=0),
            lambda: _bench_prefix_search(orders=16, repeats=1, seed=0),
        ],
    )
    def test_entry_schema(self, factory):
        entry = factory()
        assert set(entry) == EXPECTED_KEYS
        assert entry["baseline_seconds"] > 0
        assert entry["current_seconds"] > 0
        assert entry["speedup"] == pytest.approx(
            entry["baseline_seconds"] / entry["current_seconds"]
        )

    def test_payload_writes_valid_json(self, tmp_path):
        payload = tiny_payload()
        path = tmp_path / "BENCH_test.json"
        write_bench(payload, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["label"] == "test"
        assert [b["name"] for b in loaded["benches"]] == [
            b["name"] for b in payload["benches"]
        ]

    def test_format_bench_mentions_every_bench(self):
        payload = tiny_payload()
        text = format_bench(payload)
        for bench in payload["benches"]:
            assert bench["name"] in text
        assert "headline" in text


class TestBenchCLI:
    def test_bench_smoke_writes_output(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        output = tmp_path / "BENCH_ci.json"
        # Monkeypatch run_bench to the cheap payload: the CLI wiring is what
        # is under test here, not minutes of timing.
        import repro.bench as bench_module

        monkeypatch.setattr(
            bench_module, "run_bench", lambda **kwargs: tiny_payload()
        )
        assert main(["bench", "--smoke", "--output", str(output)]) == 0
        captured = capsys.readouterr().out
        assert "encode_kernel" in captured
        assert output.exists()
        json.loads(output.read_text())


class TestCompareBench:
    def payloads(self):
        from copy import deepcopy

        baseline = tiny_payload()
        current = deepcopy(baseline)
        current["label"] = "test2"
        return baseline, current

    def test_identical_payloads_have_no_regressions(self):
        from repro.bench import compare_bench

        baseline, current = self.payloads()
        text, regressions = compare_bench(baseline, current)
        assert regressions == []
        assert "no regressions" in text

    def test_regression_detected_beyond_threshold(self):
        from repro.bench import compare_bench

        baseline, current = self.payloads()
        bench = current["benches"][0]
        bench["speedup"] = bench["speedup"] * 0.5  # 50% drop
        text, regressions = compare_bench(baseline, current, threshold=0.10)
        assert regressions == [bench["name"]]
        assert "REGRESSED" in text

    def test_small_drop_within_threshold_ok(self):
        from repro.bench import compare_bench

        baseline, current = self.payloads()
        bench = current["benches"][0]
        bench["speedup"] = bench["speedup"] * 0.95  # 5% drop
        _, regressions = compare_bench(baseline, current, threshold=0.10)
        assert regressions == []

    def test_missing_benchmark_counts_as_regression(self):
        from repro.bench import compare_bench

        baseline, current = self.payloads()
        removed = current["benches"].pop(0)
        text, regressions = compare_bench(baseline, current)
        assert removed["name"] in regressions
        assert "MISSING" in text

    def test_new_benchmark_is_reported_not_flagged(self):
        from repro.bench import compare_bench

        baseline, current = self.payloads()
        extra = dict(current["benches"][0])
        extra["name"] = "brand_new_bench"
        current["benches"].append(extra)
        text, regressions = compare_bench(baseline, current)
        assert regressions == []
        assert "brand_new_bench" in text

    def test_cli_compare_exit_codes(self, tmp_path):
        from repro.cli import main

        baseline, current = self.payloads()
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(baseline))
        b.write_text(json.dumps(current))
        assert main(["bench", "--compare", str(a), str(b)]) == 0

        current["benches"][0]["speedup"] *= 0.4
        b.write_text(json.dumps(current))
        assert main(["bench", "--compare", str(a), str(b)]) == 1
        # A lenient threshold accepts the same drop.
        assert main([
            "bench", "--compare", str(a), str(b), "--compare-threshold", "0.9",
        ]) == 0
