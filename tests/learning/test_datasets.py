"""Unit tests for repro.learning.datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.learning.datasets import (
    Dataset,
    DatasetError,
    make_blobs,
    make_cifar10_like,
    make_image_classification,
    make_imagenet_like,
    make_linear_regression,
    train_test_split,
)


class TestDataset:
    def test_basic_properties(self):
        dataset = Dataset(
            features=np.zeros((10, 4)), labels=np.zeros(10, dtype=int), num_classes=2
        )
        assert dataset.num_samples == 10
        assert dataset.num_features == 4
        assert dataset.feature_shape == (4,)
        assert dataset.is_classification

    def test_regression_dataset(self):
        dataset = Dataset(
            features=np.zeros((5, 3)), labels=np.zeros(5), num_classes=0
        )
        assert not dataset.is_classification

    def test_subset(self):
        dataset = make_blobs(num_samples=20, num_features=4, num_classes=2, rng=0)
        subset = dataset.subset([0, 5, 7])
        assert subset.num_samples == 3
        assert np.array_equal(subset.features[1], dataset.features[5])

    def test_flattened(self):
        dataset = make_cifar10_like(num_samples=6, rng=0)
        flat = dataset.flattened()
        assert flat.feature_shape == (32 * 32 * 3,)
        assert flat.num_samples == 6

    def test_flattened_noop_for_flat_data(self):
        dataset = make_blobs(num_samples=6, num_features=4, num_classes=2, rng=0)
        assert dataset.flattened() is dataset

    def test_rejects_mismatched_rows(self):
        with pytest.raises(DatasetError):
            Dataset(features=np.zeros((3, 2)), labels=np.zeros(4), num_classes=0)

    def test_rejects_out_of_range_labels(self):
        with pytest.raises(DatasetError):
            Dataset(
                features=np.zeros((3, 2)),
                labels=np.array([0, 1, 5]),
                num_classes=3,
            )

    def test_rejects_empty(self):
        with pytest.raises(DatasetError):
            Dataset(features=np.zeros((0, 2)), labels=np.zeros(0), num_classes=2)


class TestGenerators:
    def test_blobs_shapes_and_balance(self):
        dataset = make_blobs(num_samples=100, num_features=8, num_classes=4, rng=0)
        assert dataset.features.shape == (100, 8)
        counts = np.bincount(dataset.labels, minlength=4)
        assert counts.min() >= 20  # roughly balanced

    def test_blobs_deterministic(self):
        a = make_blobs(num_samples=30, num_features=4, num_classes=3, rng=7)
        b = make_blobs(num_samples=30, num_features=4, num_classes=3, rng=7)
        assert np.array_equal(a.features, b.features)
        assert np.array_equal(a.labels, b.labels)

    def test_blobs_separation_improves_separability(self):
        near = make_blobs(num_samples=200, num_features=8, num_classes=2,
                          separation=0.1, rng=0)
        far = make_blobs(num_samples=200, num_features=8, num_classes=2,
                         separation=10.0, rng=0)

        def class_distance(dataset):
            centroids = [
                dataset.features[dataset.labels == c].mean(axis=0) for c in range(2)
            ]
            return float(np.linalg.norm(centroids[0] - centroids[1]))

        assert class_distance(far) > class_distance(near)

    def test_image_classification_shape(self):
        dataset = make_image_classification(
            num_samples=12, image_size=16, channels=3, num_classes=4, rng=0
        )
        assert dataset.features.shape == (12, 16, 16, 3)
        assert dataset.num_features == 16 * 16 * 3

    def test_cifar_like_profile(self):
        dataset = make_cifar10_like(num_samples=10, rng=0)
        assert dataset.feature_shape == (32, 32, 3)
        assert dataset.num_classes == 10

    def test_imagenet_like_profile(self):
        dataset = make_imagenet_like(num_samples=10, num_classes=20, image_size=32, rng=0)
        assert dataset.feature_shape == (32, 32, 3)
        assert dataset.num_classes == 20

    def test_linear_regression_targets(self):
        dataset = make_linear_regression(num_samples=50, num_features=5, rng=0)
        assert dataset.num_classes == 0
        assert dataset.labels.shape == (50,)

    def test_rejects_bad_sizes(self):
        with pytest.raises(DatasetError):
            make_blobs(num_samples=0)
        with pytest.raises(DatasetError):
            make_image_classification(
                num_samples=4, image_size=0, channels=3, num_classes=2
            )


class TestTrainTestSplit:
    def test_partition_sizes(self):
        dataset = make_blobs(num_samples=100, rng=0)
        train, test = train_test_split(dataset, test_fraction=0.25, rng=0)
        assert train.num_samples == 75
        assert test.num_samples == 25

    def test_disjoint_and_complete(self):
        dataset = make_blobs(num_samples=40, num_features=3, num_classes=2, rng=0)
        train, test = train_test_split(dataset, test_fraction=0.5, rng=1)
        combined = np.vstack([train.features, test.features])
        assert combined.shape[0] == dataset.num_samples
        # Every original row appears exactly once in the union.
        original = {tuple(row) for row in dataset.features.round(12)}
        split_rows = {tuple(row) for row in combined.round(12)}
        assert original == split_rows

    def test_rejects_bad_fraction(self):
        dataset = make_blobs(num_samples=10, rng=0)
        with pytest.raises(DatasetError):
            train_test_split(dataset, test_fraction=0.0)
        with pytest.raises(DatasetError):
            train_test_split(dataset, test_fraction=1.0)
