"""Unit tests for repro.learning.losses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.learning.losses import (
    cross_entropy_loss,
    log_softmax,
    mean_squared_error_loss,
    one_hot,
    softmax,
    stacked_cross_entropy_loss,
)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        logits = rng.normal(size=(7, 5))
        probs = softmax(logits)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs > 0)

    def test_shift_invariance(self, rng):
        logits = rng.normal(size=(4, 3))
        assert np.allclose(softmax(logits), softmax(logits + 100.0))

    def test_numerical_stability_large_logits(self):
        logits = np.array([[1000.0, 0.0], [0.0, -1000.0]])
        probs = softmax(logits)
        assert np.all(np.isfinite(probs))
        assert probs[0, 0] == pytest.approx(1.0)

    def test_log_softmax_consistency(self, rng):
        logits = rng.normal(size=(6, 4))
        assert np.allclose(np.exp(log_softmax(logits)), softmax(logits))


class TestOneHot:
    def test_encoding(self):
        encoded = one_hot(np.array([0, 2, 1]), 3)
        assert np.array_equal(
            encoded, np.array([[1, 0, 0], [0, 0, 1], [0, 1, 0]], dtype=float)
        )

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            one_hot(np.array([0, 3]), 3)

    def test_rejects_2d_labels(self):
        with pytest.raises(ValueError):
            one_hot(np.zeros((2, 2), dtype=int), 3)


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        labels = np.array([0, 1])
        loss, _ = cross_entropy_loss(logits, labels)
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_uniform_prediction_loss(self):
        logits = np.zeros((3, 4))
        labels = np.array([0, 1, 2])
        loss, _ = cross_entropy_loss(logits, labels)
        assert loss == pytest.approx(3 * np.log(4))

    def test_loss_is_sum_over_samples(self, rng):
        logits = rng.normal(size=(8, 3))
        labels = rng.integers(0, 3, size=8)
        total, _ = cross_entropy_loss(logits, labels)
        partial = sum(
            cross_entropy_loss(logits[i : i + 1], labels[i : i + 1])[0]
            for i in range(8)
        )
        assert total == pytest.approx(partial)

    def test_gradient_matches_finite_differences(self, rng):
        logits = rng.normal(size=(4, 3))
        labels = rng.integers(0, 3, size=4)
        _, grad = cross_entropy_loss(logits, labels)
        eps = 1e-6
        for i in range(4):
            for j in range(3):
                plus = logits.copy()
                plus[i, j] += eps
                minus = logits.copy()
                minus[i, j] -= eps
                numeric = (
                    cross_entropy_loss(plus, labels)[0]
                    - cross_entropy_loss(minus, labels)[0]
                ) / (2 * eps)
                assert grad[i, j] == pytest.approx(numeric, abs=1e-5)

    def test_gradient_rows_sum_to_zero(self, rng):
        logits = rng.normal(size=(5, 4))
        labels = rng.integers(0, 4, size=5)
        _, grad = cross_entropy_loss(logits, labels)
        assert np.allclose(grad.sum(axis=1), 0.0)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            cross_entropy_loss(np.zeros(3), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            cross_entropy_loss(np.zeros((3, 2)), np.zeros(4, dtype=int))


class TestStackedCrossEntropy:
    """KER001 pairing: the stacked kernel vs its scalar counterpart."""

    def test_stacked_cross_entropy_loss_matches_cross_entropy_loss(self, rng):
        logits = rng.normal(size=(6, 9, 4))
        labels = rng.integers(0, 4, size=(6, 9))
        losses, dlogits = stacked_cross_entropy_loss(logits, labels)
        assert losses.shape == (6,)
        assert dlogits.shape == logits.shape
        for i in range(6):
            loss_i, grad_i = cross_entropy_loss(logits[i], labels[i])
            # Bit-identity, not closeness: the stacked kernel replicates
            # the scalar operation sequence exactly.
            assert losses[i] == loss_i
            assert np.array_equal(dlogits[i], grad_i)

    def test_extreme_logits_match_exactly(self):
        logits = np.array(
            [[[1000.0, 0.0, -1000.0], [5.0, 5.0, 5.0]]], dtype=np.float64
        )
        labels = np.array([[0, 2]])
        losses, dlogits = stacked_cross_entropy_loss(logits, labels)
        loss0, grad0 = cross_entropy_loss(logits[0], labels[0])
        assert losses[0] == loss0
        assert np.array_equal(dlogits[0], grad0)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            stacked_cross_entropy_loss(np.zeros((3, 2)), np.zeros((3, 2), dtype=int))
        with pytest.raises(ValueError):
            stacked_cross_entropy_loss(
                np.zeros((3, 2, 4)), np.zeros((3, 3), dtype=int)
            )


class TestMeanSquaredError:
    def test_zero_for_exact_prediction(self):
        predictions = np.array([1.0, 2.0, 3.0])
        loss, grad = mean_squared_error_loss(predictions, predictions)
        assert loss == 0.0
        assert np.allclose(grad, 0.0)

    def test_value_and_gradient(self):
        predictions = np.array([1.0, 3.0])
        targets = np.array([0.0, 0.0])
        loss, grad = mean_squared_error_loss(predictions, targets)
        assert loss == pytest.approx(0.5 * (1 + 9))
        assert np.allclose(grad, [1.0, 3.0])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_squared_error_loss(np.zeros(3), np.zeros(4))
