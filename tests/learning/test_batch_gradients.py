"""Exactness tests for the batched gradient kernels and matrix-form encoding.

The batched kernels are required to be *bit-identical* to the per-partition
path for the vectorised models (softmax, linear) — they perform the same
reductions along the same axes — and identical by construction for models
that inherit the base loop.  Matrix-form encoding is checked against the
per-worker support-ordered loop at tight tolerance (the summation order
differs by design).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding import heterogeneity_aware_strategy
from repro.learning.datasets import make_blobs, make_linear_regression
from repro.learning.gradients import (
    compute_partial_gradients,
    compute_partial_gradients_matrix,
    encode_all_workers,
    encode_all_workers_matrix,
    encode_worker_gradient,
    full_gradient,
    partition_losses,
)
from repro.learning.models import (
    LinearRegressionModel,
    MLPClassifier,
    SoftmaxClassifier,
)
from repro.learning.models.base import ModelError
from repro.learning.partition import PartitionError, partition_dataset


@pytest.fixture
def blob_setup():
    dataset = make_blobs(num_samples=240, num_features=6, num_classes=4, rng=0)
    partitioned = partition_dataset(dataset, num_partitions=8, rng=0)
    model = SoftmaxClassifier(6, 4, rng=1)
    return dataset, partitioned, model


class TestBatchKernels:
    def test_softmax_batch_bit_identical(self, blob_setup):
        _, partitioned, model = blob_setup
        features, labels = partitioned.stacked_data()
        losses, gradients = model.batch_loss_and_gradient(features, labels)
        for index in range(partitioned.num_partitions):
            loss, grad = model.loss_and_gradient(*partitioned.partition_data(index))
            assert loss == losses[index]
            assert np.array_equal(grad, gradients[index])

    def test_linear_batch_matches_per_slice(self):
        dataset = make_linear_regression(num_samples=160, num_features=5, rng=0)
        partitioned = partition_dataset(dataset, num_partitions=8, rng=0)
        model = LinearRegressionModel(5, rng=1)
        features, labels = partitioned.stacked_data()
        losses, gradients = model.batch_loss_and_gradient(features, labels)
        for index in range(partitioned.num_partitions):
            loss, grad = model.loss_and_gradient(*partitioned.partition_data(index))
            assert loss == pytest.approx(losses[index], rel=1e-14, abs=1e-300)
            assert np.allclose(grad, gradients[index], rtol=1e-13, atol=1e-13)

    def test_base_loop_covers_models_without_vectorised_kernel(self):
        dataset = make_blobs(num_samples=120, num_features=8, num_classes=3, rng=2)
        partitioned = partition_dataset(dataset, num_partitions=4, rng=2)
        model = MLPClassifier(8, 3, hidden_sizes=(8,), rng=3)
        features, labels = partitioned.stacked_data()
        losses, gradients = model.batch_loss_and_gradient(features, labels)
        for index in range(4):
            loss, grad = model.loss_and_gradient(*partitioned.partition_data(index))
            assert loss == losses[index]
            assert np.array_equal(grad, gradients[index])

    def test_shape_validation(self, blob_setup):
        _, partitioned, model = blob_setup
        features, labels = partitioned.stacked_data()
        with pytest.raises(ModelError):
            model.batch_loss_and_gradient(features, labels[:-1])
        with pytest.raises(ModelError):
            model.batch_loss_and_gradient(features[:, :, :-1], labels)


class TestPartitionCaching:
    def test_partition_data_cached(self, blob_setup):
        _, partitioned, _ = blob_setup
        data = partitioned.partition_data(2)
        again = partitioned.partition_data(2)
        assert data[0] is again[0] and data[1] is again[1]

    def test_cached_views_are_read_only(self, blob_setup):
        _, partitioned, _ = blob_setup
        features, _ = partitioned.partition_data(0)
        with pytest.raises(ValueError):
            features[0, 0] = 1.0

    def test_stacked_data_cached_and_consistent(self, blob_setup):
        _, partitioned, _ = blob_setup
        features, labels = partitioned.stacked_data()
        assert features.shape[:2] == (partitioned.num_partitions, partitioned.partition_size)
        assert partitioned.stacked_data()[0] is features
        for index in range(partitioned.num_partitions):
            part_features, part_labels = partitioned.partition_data(index)
            assert np.array_equal(features[index], part_features)
            assert np.array_equal(labels[index], part_labels)

    def test_stacked_data_rejects_ragged_partitions(self, blob_setup):
        dataset, partitioned, _ = blob_setup
        from repro.learning.partition import DataPartition, PartitionedDataset

        ragged = PartitionedDataset(
            dataset=dataset,
            partitions=(
                DataPartition(index=0, sample_indices=np.arange(10)),
                DataPartition(index=1, sample_indices=np.arange(10, 15)),
            ),
        )
        with pytest.raises(PartitionError, match="equal-sized"):
            ragged.stacked_data()


class TestMatrixGradientHelpers:
    def test_matrix_form_matches_dict_form(self, blob_setup):
        _, partitioned, model = blob_setup
        losses, gradients = compute_partial_gradients_matrix(model, partitioned)
        mapping = compute_partial_gradients(model, partitioned)
        scalar_losses = partition_losses(model, partitioned)
        for index in range(partitioned.num_partitions):
            assert np.array_equal(mapping[index], gradients[index])
            assert scalar_losses[index] == losses[index]

    def test_subset_request_preserves_order(self, blob_setup):
        _, partitioned, model = blob_setup
        subset = [5, 1, 3]
        losses, gradients = compute_partial_gradients_matrix(
            model, partitioned, subset
        )
        assert losses.shape == (3,) and gradients.shape[0] == 3
        for position, index in enumerate(subset):
            loss, grad = model.loss_and_gradient(*partitioned.partition_data(index))
            assert loss == losses[position]
            assert np.array_equal(grad, gradients[position])

    def test_empty_request(self, blob_setup):
        _, partitioned, model = blob_setup
        losses, gradients = compute_partial_gradients_matrix(model, partitioned, [])
        assert losses.shape == (0,)
        assert gradients.shape == (0, model.num_parameters)

    def test_full_gradient_equals_accumulated_rows(self, blob_setup):
        _, partitioned, model = blob_setup
        _, gradients = compute_partial_gradients_matrix(model, partitioned)
        total = np.zeros(model.num_parameters)
        for row in gradients:
            total += row
        assert np.array_equal(full_gradient(model, partitioned), total)


class TestMatrixEncoding:
    @pytest.fixture
    def strategy(self):
        return heterogeneity_aware_strategy(
            [1.0, 2.0, 3.0, 4.0, 4.0], num_partitions=7, num_stragglers=1, rng=0
        )

    def test_matrix_encode_matches_per_worker(self, strategy, rng):
        gradients = rng.normal(size=(7, 11))
        mapping = {index: gradients[index] for index in range(7)}
        coded = encode_all_workers_matrix(strategy, gradients)
        assert coded.shape == (strategy.num_workers, 11)
        for worker in range(strategy.num_workers):
            loop = encode_worker_gradient(strategy, worker, mapping)
            assert np.allclose(coded[worker], loop, rtol=1e-12, atol=1e-12)

    def test_dict_adapter_round_trip(self, strategy, rng):
        gradients = rng.normal(size=(7, 11))
        mapping = {index: gradients[index] for index in range(7)}
        adapted = encode_all_workers(strategy, mapping)
        coded = encode_all_workers_matrix(strategy, gradients)
        assert set(adapted) == set(range(strategy.num_workers))
        for worker, value in adapted.items():
            assert np.array_equal(value, coded[worker])

    def test_dict_adapter_missing_supported_partition_raises(self, strategy, rng):
        gradients = rng.normal(size=(7, 11))
        mapping = {index: gradients[index] for index in range(6)}  # drop 6
        with pytest.raises(KeyError):
            encode_all_workers(strategy, mapping)

    def test_dict_adapter_ignores_unsupported_entry_shapes(self, rng):
        """Shape inference must come from supported partitions only."""
        from repro.coding.types import CodingStrategy, PartitionAssignment

        matrix = np.array([[1.0, 1.0, 0.0], [0.0, 1.0, 0.0]])
        strategy = CodingStrategy(
            matrix=matrix,
            assignment=PartitionAssignment(
                num_workers=2,
                num_partitions=3,
                partitions_per_worker=((0, 1), (1,)),
            ),
            num_stragglers=0,
            scheme="synthetic",
        )
        gradients = rng.normal(size=(3, 5))
        mapping = {2: np.zeros(9), 0: gradients[0], 1: gradients[1]}
        adapted = encode_all_workers(strategy, mapping)
        for worker in range(2):
            assert np.allclose(
                adapted[worker],
                encode_worker_gradient(strategy, worker, mapping),
                rtol=1e-12,
                atol=1e-12,
            )

    def test_full_request_uses_cached_stack(self, blob_setup):
        _, partitioned, model = blob_setup
        compute_partial_gradients_matrix(model, partitioned)
        assert partitioned._stacked_cache is not None

    def test_matrix_encode_arbitrary_trailing_shape(self, strategy, rng):
        gradients = rng.normal(size=(7, 3, 4))
        coded = encode_all_workers_matrix(strategy, gradients)
        assert coded.shape == (strategy.num_workers, 3, 4)
        flat = encode_all_workers_matrix(strategy, gradients.reshape(7, 12))
        assert np.array_equal(coded.reshape(strategy.num_workers, 12), flat)

    def test_matrix_encode_shape_validation(self, strategy, rng):
        with pytest.raises(ValueError, match="stacked partial gradients"):
            encode_all_workers_matrix(strategy, rng.normal(size=(6, 4)))
