"""Unit and property tests for repro.learning.gradients (the coding glue)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import Decoder, heterogeneity_aware_strategy, naive_strategy
from repro.learning.datasets import make_blobs
from repro.learning.gradients import (
    compute_partial_gradients,
    compute_partition_gradient,
    encode_all_workers,
    encode_worker_gradient,
    full_gradient,
    partition_losses,
)
from repro.learning.models import SoftmaxClassifier
from repro.learning.partition import partition_dataset


class TestPartialGradients:
    def test_partial_gradients_sum_to_full_batch_gradient(
        self, softmax_model, partitioned_blobs, blob_dataset
    ):
        """The core additivity property: sum_i g_i == full-batch gradient."""
        partial = compute_partial_gradients(softmax_model, partitioned_blobs)
        total = sum(partial.values())
        used_indices = np.concatenate(
            [p.sample_indices for p in partitioned_blobs.partitions]
        )
        _, direct = softmax_model.loss_and_gradient(
            blob_dataset.features[used_indices], blob_dataset.labels[used_indices]
        )
        assert np.allclose(total, direct, atol=1e-9)

    def test_full_gradient_helper_matches_sum(self, softmax_model, partitioned_blobs):
        partial = compute_partial_gradients(softmax_model, partitioned_blobs)
        assert np.allclose(
            full_gradient(softmax_model, partitioned_blobs), sum(partial.values())
        )

    def test_subset_of_partitions(self, softmax_model, partitioned_blobs):
        partial = compute_partial_gradients(softmax_model, partitioned_blobs, [0, 3, 5])
        assert set(partial.keys()) == {0, 3, 5}

    def test_partition_gradient_shape(self, softmax_model, partitioned_blobs):
        loss, grad = compute_partition_gradient(softmax_model, partitioned_blobs, 0)
        assert np.isfinite(loss)
        assert grad.shape == (softmax_model.num_parameters,)

    def test_partition_losses_sum(self, softmax_model, partitioned_blobs, blob_dataset):
        losses = partition_losses(softmax_model, partitioned_blobs)
        used_indices = np.concatenate(
            [p.sample_indices for p in partitioned_blobs.partitions]
        )
        direct = softmax_model.loss(
            blob_dataset.features[used_indices], blob_dataset.labels[used_indices]
        )
        assert sum(losses.values()) == pytest.approx(direct)


class TestEncoding:
    def test_encode_respects_support(self, softmax_model, partitioned_blobs):
        strategy = heterogeneity_aware_strategy(
            [1, 2, 3, 4, 4], num_partitions=10, num_stragglers=1, rng=0
        )
        partial = compute_partial_gradients(softmax_model, partitioned_blobs)
        coded = encode_worker_gradient(strategy, 0, partial)
        support = list(strategy.support(0))
        expected = strategy.row(0)[support] @ np.vstack([partial[j] for j in support])
        assert np.allclose(coded, expected)

    def test_encode_all_and_decode_equals_full_gradient(
        self, softmax_model, partitioned_blobs
    ):
        strategy = heterogeneity_aware_strategy(
            [1, 2, 3, 4, 4], num_partitions=10, num_stragglers=1, rng=0
        )
        partial = compute_partial_gradients(softmax_model, partitioned_blobs)
        coded = encode_all_workers(strategy, partial)
        expected = full_gradient(softmax_model, partitioned_blobs)
        decoder = Decoder(strategy)
        for straggler in range(strategy.num_workers):
            received = {w: g for w, g in coded.items() if w != straggler}
            recovered = decoder.decode(received)
            assert np.allclose(recovered, expected, atol=1e-7)

    def test_missing_partition_raises(self, softmax_model, partitioned_blobs):
        strategy = heterogeneity_aware_strategy(
            [1, 2, 3, 4, 4], num_partitions=10, num_stragglers=1, rng=0
        )
        partial = compute_partial_gradients(softmax_model, partitioned_blobs, [0])
        with pytest.raises(KeyError):
            encode_worker_gradient(strategy, 4, partial)

    def test_empty_support_worker_encodes_zero(self, softmax_model, partitioned_blobs):
        # Build a strategy in which one worker ends up with zero partitions:
        # one extremely slow worker among fast ones.
        strategy = heterogeneity_aware_strategy(
            [0.01, 10, 10, 10], num_partitions=8, num_stragglers=1, rng=0
        )
        if strategy.loads[0] != 0:
            pytest.skip("allocation assigned the slow worker a partition")
        partial = compute_partial_gradients(softmax_model, partitioned_blobs)
        coded = encode_worker_gradient(strategy, 0, partial)
        assert np.allclose(coded, 0.0)

    def test_naive_encoding_is_plain_sum(self, softmax_model, blob_dataset):
        partitioned = partition_dataset(blob_dataset, 5, rng=0)
        strategy = naive_strategy(5)
        partial = compute_partial_gradients(softmax_model, partitioned)
        coded = encode_all_workers(strategy, partial)
        for worker in range(5):
            assert np.allclose(coded[worker], partial[worker])

    @given(seed=st.integers(0, 1000), straggler=st.integers(0, 4))
    @settings(max_examples=15, deadline=None)
    def test_property_decode_equals_full_gradient(self, seed, straggler):
        """For random models and data, decoding is always exact."""
        dataset = make_blobs(num_samples=60, num_features=6, num_classes=3, rng=seed)
        partitioned = partition_dataset(dataset, 10, rng=seed)
        model = SoftmaxClassifier(6, 3, rng=seed)
        strategy = heterogeneity_aware_strategy(
            [1, 2, 3, 4, 4], num_partitions=10, num_stragglers=1, rng=seed
        )
        partial = compute_partial_gradients(model, partitioned)
        coded = encode_all_workers(strategy, partial)
        received = {w: g for w, g in coded.items() if w != straggler}
        recovered = Decoder(strategy).decode(received)
        expected = full_gradient(model, partitioned)
        scale = max(1.0, float(np.abs(expected).max()))
        assert np.allclose(recovered, expected, atol=1e-7 * scale)
