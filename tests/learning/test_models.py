"""Unit tests for the numpy model zoo (gradient checks, parameter round-trips)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.learning.datasets import make_blobs, make_image_classification, make_linear_regression
from repro.learning.models import (
    LinearRegressionModel,
    MLPClassifier,
    ModelError,
    ParameterLayout,
    SimpleCNN,
    SoftmaxClassifier,
)


def finite_difference_check(model, features, labels, num_checks=10, epsilon=1e-6):
    """Max relative error between analytic and numeric gradients."""
    theta = model.parameters()
    _, grad = model.loss_and_gradient(features, labels)
    rng = np.random.default_rng(0)
    indices = rng.choice(theta.size, size=min(num_checks, theta.size), replace=False)
    worst = 0.0
    for index in indices:
        plus = theta.copy()
        plus[index] += epsilon
        model.set_parameters(plus)
        loss_plus = model.loss(features, labels)
        minus = theta.copy()
        minus[index] -= epsilon
        model.set_parameters(minus)
        loss_minus = model.loss(features, labels)
        numeric = (loss_plus - loss_minus) / (2 * epsilon)
        denominator = max(1.0, abs(numeric), abs(grad[index]))
        worst = max(worst, abs(numeric - grad[index]) / denominator)
    model.set_parameters(theta)
    return worst


class TestParameterLayout:
    def test_pack_unpack_roundtrip(self, rng):
        layout = ParameterLayout([("a", (2, 3)), ("b", (4,)), ("c", ())])
        arrays = {
            "a": rng.normal(size=(2, 3)),
            "b": rng.normal(size=4),
            "c": np.asarray(1.5),
        }
        flat = layout.pack(arrays)
        assert flat.shape == (11,)
        unpacked = layout.unpack(flat)
        for name in arrays:
            assert np.allclose(unpacked[name], arrays[name])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ModelError):
            ParameterLayout([("a", (2,)), ("a", (3,))])

    def test_rejects_wrong_shape_on_pack(self):
        layout = ParameterLayout([("a", (2,))])
        with pytest.raises(ModelError):
            layout.pack({"a": np.zeros(3)})

    def test_rejects_wrong_length_on_unpack(self):
        layout = ParameterLayout([("a", (2,))])
        with pytest.raises(ModelError):
            layout.unpack(np.zeros(3))

    def test_pack_into_is_bit_identical_to_pack(self, rng):
        layout = ParameterLayout([("a", (2, 3)), ("b", (4,)), ("c", ())])
        arrays = {
            "a": rng.normal(size=(2, 3)),
            "b": rng.normal(size=4),
            "c": np.asarray(1.5),
        }
        out = np.empty(layout.total_size, dtype=np.float64)
        returned = layout.pack_into(arrays, out)
        assert returned is out
        assert np.array_equal(out, layout.pack(arrays))
        # Reuse of the same scratch buffer stays exact.
        arrays["a"] = rng.normal(size=(2, 3))
        layout.pack_into(arrays, out)
        assert np.array_equal(out, layout.pack(arrays))

    def test_pack_into_rejects_bad_buffer(self, rng):
        layout = ParameterLayout([("a", (2,))])
        with pytest.raises(ModelError):
            layout.pack_into({"a": np.zeros(2)}, np.empty(3, dtype=np.float64))
        with pytest.raises(ModelError):
            layout.pack_into({"a": np.zeros(2)}, np.empty(2, dtype=np.float32))
        with pytest.raises(ModelError):
            layout.pack_into({"a": np.zeros(3)}, np.empty(2, dtype=np.float64))

    def test_views_into_aliases_the_flat_vector(self, rng):
        layout = ParameterLayout([("a", (2, 3)), ("b", (4,)), ("c", ())])
        flat = rng.normal(size=layout.total_size)
        views = layout.views_into(flat)
        for name, view in views.items():
            assert np.array_equal(view, layout.unpack(flat)[name])
            assert view.base is flat or view.base is not None
        views["b"][0] = 99.0
        assert flat[6] == 99.0  # writes through the view reach the vector

    def test_views_into_rejects_non_contiguous_and_wrong_dtype(self):
        layout = ParameterLayout([("a", (2,)), ("b", (2,))])
        with pytest.raises(ModelError):
            layout.views_into(np.zeros(8, dtype=np.float64)[::2])
        with pytest.raises(ModelError):
            layout.views_into(np.zeros(4, dtype=np.float32))
        with pytest.raises(ModelError):
            layout.views_into(np.zeros(5, dtype=np.float64))

    def test_views_into_accepts_parameter_stack_rows(self, rng):
        layout = ParameterLayout([("a", (3,)), ("b", ())])
        stack = rng.normal(size=(2, layout.total_size))
        views = layout.views_into(stack[1])
        assert np.array_equal(views["a"], stack[1, :3])


class TestSoftmaxClassifier:
    def test_gradient_check(self):
        dataset = make_blobs(num_samples=40, num_features=6, num_classes=3, rng=0)
        model = SoftmaxClassifier(6, 3, rng=0)
        assert finite_difference_check(model, dataset.features, dataset.labels) < 1e-5

    def test_parameter_roundtrip(self):
        model = SoftmaxClassifier(4, 3, rng=0)
        theta = model.parameters()
        model.set_parameters(theta * 2)
        assert np.allclose(model.parameters(), theta * 2)

    def test_training_improves_accuracy(self):
        dataset = make_blobs(num_samples=200, num_features=8, num_classes=4,
                             separation=4.0, rng=0)
        model = SoftmaxClassifier(8, 4, rng=0)
        theta = model.parameters()
        for _ in range(60):
            _, grad = model.loss_and_gradient(dataset.features, dataset.labels)
            theta = theta - 0.01 * grad / dataset.num_samples
            model.set_parameters(theta)
        assert model.accuracy(dataset.features, dataset.labels) > 0.9

    def test_predict_proba_sums_to_one(self):
        dataset = make_blobs(num_samples=10, num_features=4, num_classes=3, rng=0)
        model = SoftmaxClassifier(4, 3, rng=0)
        probs = model.predict_proba(dataset.features)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_accepts_image_shaped_input(self):
        dataset = make_image_classification(
            num_samples=6, image_size=8, channels=3, num_classes=2, rng=0
        )
        model = SoftmaxClassifier(8 * 8 * 3, 2, rng=0)
        assert model.predict(dataset.features).shape == (6,)

    def test_rejects_wrong_feature_count(self):
        model = SoftmaxClassifier(4, 3, rng=0)
        with pytest.raises(ModelError):
            model.predict(np.zeros((2, 5)))

    def test_rejects_bad_construction(self):
        with pytest.raises(ModelError):
            SoftmaxClassifier(0, 3)
        with pytest.raises(ModelError):
            SoftmaxClassifier(4, 1)


class TestMLPClassifier:
    def test_gradient_check_relu(self):
        dataset = make_blobs(num_samples=30, num_features=5, num_classes=3, rng=1)
        model = MLPClassifier(5, 3, hidden_sizes=(8, 6), activation="relu", rng=1)
        assert finite_difference_check(model, dataset.features, dataset.labels) < 1e-4

    def test_gradient_check_tanh(self):
        dataset = make_blobs(num_samples=30, num_features=5, num_classes=3, rng=1)
        model = MLPClassifier(5, 3, hidden_sizes=(8,), activation="tanh", rng=1)
        assert finite_difference_check(model, dataset.features, dataset.labels) < 1e-5

    def test_no_hidden_layers_behaves_like_softmax(self):
        dataset = make_blobs(num_samples=30, num_features=5, num_classes=3, rng=1)
        model = MLPClassifier(5, 3, hidden_sizes=(), rng=1)
        assert finite_difference_check(model, dataset.features, dataset.labels) < 1e-5

    def test_parameter_count(self):
        model = MLPClassifier(10, 4, hidden_sizes=(16,), rng=0)
        expected = 10 * 16 + 16 + 16 * 4 + 4
        assert model.num_parameters == expected

    def test_clone_is_independent(self):
        model = MLPClassifier(4, 2, hidden_sizes=(3,), rng=0)
        clone = model.clone()
        clone.set_parameters(clone.parameters() + 1.0)
        assert not np.allclose(model.parameters(), clone.parameters())

    def test_training_reduces_loss(self):
        dataset = make_blobs(num_samples=150, num_features=6, num_classes=3,
                             separation=3.0, rng=2)
        model = MLPClassifier(6, 3, hidden_sizes=(16,), rng=2)
        theta = model.parameters()
        initial = model.loss(dataset.features, dataset.labels) / dataset.num_samples
        for _ in range(80):
            _, grad = model.loss_and_gradient(dataset.features, dataset.labels)
            theta = theta - 0.05 * grad / dataset.num_samples
            model.set_parameters(theta)
        final = model.loss(dataset.features, dataset.labels) / dataset.num_samples
        assert final < 0.5 * initial

    def test_rejects_bad_activation(self):
        with pytest.raises(ModelError):
            MLPClassifier(4, 2, activation="sigmoid")

    def test_rejects_bad_hidden_size(self):
        with pytest.raises(ModelError):
            MLPClassifier(4, 2, hidden_sizes=(0,))


class TestSimpleCNN:
    def test_gradient_check(self):
        dataset = make_image_classification(
            num_samples=8, image_size=10, channels=2, num_classes=3, rng=3
        )
        model = SimpleCNN(image_size=10, channels=2, num_classes=3, num_filters=3, rng=3)
        assert finite_difference_check(model, dataset.features, dataset.labels) < 1e-4

    def test_accepts_flattened_images(self):
        dataset = make_image_classification(
            num_samples=4, image_size=8, channels=3, num_classes=2, rng=0
        )
        model = SimpleCNN(image_size=8, channels=3, num_classes=2, rng=0)
        flat = dataset.features.reshape(4, -1)
        assert model.predict(flat).shape == (4,)

    def test_predict_proba(self):
        dataset = make_image_classification(
            num_samples=4, image_size=8, channels=1, num_classes=3, rng=0
        )
        model = SimpleCNN(image_size=8, channels=1, num_classes=3, rng=0)
        probs = model.predict_proba(dataset.features)
        assert probs.shape == (4, 3)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_parameter_roundtrip(self):
        model = SimpleCNN(image_size=8, channels=1, num_classes=2, rng=0)
        theta = model.parameters()
        model.set_parameters(theta * 0.5)
        assert np.allclose(model.parameters(), theta * 0.5)

    def test_rejects_wrong_image_shape(self):
        model = SimpleCNN(image_size=8, channels=3, num_classes=2, rng=0)
        with pytest.raises(ModelError):
            model.predict(np.zeros((2, 9, 9, 3)))

    def test_rejects_image_smaller_than_kernel(self):
        with pytest.raises(ModelError):
            SimpleCNN(image_size=2, channels=1, num_classes=2, kernel_size=3)


class TestLinearRegressionModel:
    def test_gradient_check(self):
        dataset = make_linear_regression(num_samples=30, num_features=5, rng=0)
        model = LinearRegressionModel(5, rng=0)
        assert finite_difference_check(model, dataset.features, dataset.labels) < 1e-6

    def test_recovers_true_weights(self):
        dataset = make_linear_regression(
            num_samples=400, num_features=4, noise=0.01, rng=1
        )
        model = LinearRegressionModel(4, rng=1)
        theta = model.parameters()
        for _ in range(400):
            _, grad = model.loss_and_gradient(dataset.features, dataset.labels)
            theta = theta - 0.1 * grad / dataset.num_samples
            model.set_parameters(theta)
        predictions = model.predict(dataset.features)
        residual = np.mean((predictions - dataset.labels) ** 2)
        assert residual < 0.01

    def test_rejects_wrong_feature_count(self):
        model = LinearRegressionModel(3, rng=0)
        with pytest.raises(ModelError):
            model.predict(np.zeros((2, 4)))
