"""Unit tests for repro.learning.partition."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learning.datasets import make_blobs
from repro.learning.partition import PartitionError, partition_dataset


class TestPartitionDataset:
    def test_equal_sizes(self):
        dataset = make_blobs(num_samples=103, rng=0)
        partitioned = partition_dataset(dataset, 10, rng=0)
        assert partitioned.num_partitions == 10
        assert partitioned.partition_size == 10
        assert partitioned.samples_used == 100

    def test_exact_division(self):
        dataset = make_blobs(num_samples=100, rng=0)
        partitioned = partition_dataset(dataset, 4, rng=0)
        assert partitioned.samples_used == 100
        assert all(p.size == 25 for p in partitioned.partitions)

    def test_partitions_are_disjoint(self):
        dataset = make_blobs(num_samples=60, rng=0)
        partitioned = partition_dataset(dataset, 6, rng=0)
        all_indices = np.concatenate(
            [p.sample_indices for p in partitioned.partitions]
        )
        assert len(all_indices) == len(set(all_indices.tolist()))

    def test_partition_data_returns_correct_rows(self):
        dataset = make_blobs(num_samples=30, num_features=4, rng=0)
        partitioned = partition_dataset(dataset, 3, shuffle=False)
        features, labels = partitioned.partition_data(1)
        assert np.array_equal(features, dataset.features[10:20])
        assert np.array_equal(labels, dataset.labels[10:20])

    def test_no_shuffle_preserves_order(self):
        dataset = make_blobs(num_samples=12, rng=0)
        partitioned = partition_dataset(dataset, 3, shuffle=False)
        assert partitioned.partitions[0].sample_indices.tolist() == [0, 1, 2, 3]

    def test_shuffle_changes_assignment(self):
        dataset = make_blobs(num_samples=50, rng=0)
        a = partition_dataset(dataset, 5, shuffle=True, rng=1)
        b = partition_dataset(dataset, 5, shuffle=False)
        assert not np.array_equal(
            a.partitions[0].sample_indices, b.partitions[0].sample_indices
        )

    def test_shuffle_deterministic_with_seed(self):
        dataset = make_blobs(num_samples=50, rng=0)
        a = partition_dataset(dataset, 5, rng=3)
        b = partition_dataset(dataset, 5, rng=3)
        for pa, pb in zip(a.partitions, b.partitions):
            assert np.array_equal(pa.sample_indices, pb.sample_indices)

    def test_iter_partitions(self):
        dataset = make_blobs(num_samples=20, rng=0)
        partitioned = partition_dataset(dataset, 4, rng=0)
        seen = list(partitioned.iter_partitions())
        assert [index for index, _, _ in seen] == [0, 1, 2, 3]
        assert all(features.shape[0] == 5 for _, features, _ in seen)

    def test_out_of_range_partition_index(self):
        dataset = make_blobs(num_samples=20, rng=0)
        partitioned = partition_dataset(dataset, 4, rng=0)
        with pytest.raises(PartitionError):
            partitioned.partition_data(4)

    def test_rejects_more_partitions_than_samples(self):
        dataset = make_blobs(num_samples=3, rng=0)
        with pytest.raises(PartitionError):
            partition_dataset(dataset, 5)

    def test_rejects_zero_partitions(self):
        dataset = make_blobs(num_samples=10, rng=0)
        with pytest.raises(PartitionError):
            partition_dataset(dataset, 0)

    @given(
        num_samples=st.integers(min_value=10, max_value=200),
        k=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_equal_sizes_and_coverage(self, num_samples, k):
        """All partitions are equal-sized and use floor(n/k)*k distinct samples."""
        if k > num_samples:
            return
        dataset = make_blobs(num_samples=num_samples, num_features=3, rng=0)
        partitioned = partition_dataset(dataset, k, rng=0)
        sizes = {p.size for p in partitioned.partitions}
        assert sizes == {num_samples // k}
        used = np.concatenate([p.sample_indices for p in partitioned.partitions])
        assert len(used) == (num_samples // k) * k
        assert len(set(used.tolist())) == len(used)
