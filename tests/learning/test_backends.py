"""Unit tests for the pluggable array-backend seam."""

from __future__ import annotations

import numpy as np
import pytest

from repro._registry import ARRAY_BACKENDS
from repro.learning.backends import (
    ArrayBackend,
    BackendUnavailableError,
    NumpyBackend,
    get_array_backend,
    numpy_backend,
    register_array_backend,
)
from repro.learning.datasets import make_blobs
from repro.learning.models import MLPClassifier, SoftmaxClassifier


class TestRegistry:
    def test_builtins_registered(self):
        for name in ("numpy", "torch", "cupy"):
            assert name in ARRAY_BACKENDS

    def test_get_array_backend_resolves_numpy_singleton(self):
        assert get_array_backend("numpy") is numpy_backend

    def test_get_array_backend_passes_instances_through(self):
        backend = NumpyBackend()
        assert get_array_backend(backend) is backend

    def test_get_array_backend_caches_instances(self):
        @register_array_backend("_test_counting")
        class CountingBackend(NumpyBackend):
            name = "_test_counting"
            constructions = 0

            def __init__(self) -> None:
                type(self).constructions += 1

        try:
            first = get_array_backend("_test_counting")
            second = get_array_backend("_test_counting")
            assert first is second
            assert CountingBackend.constructions == 1
        finally:
            ARRAY_BACKENDS.unregister("_test_counting")

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError):
            get_array_backend("no-such-backend")

    def test_unavailable_library_raises_with_hint(self):
        for name, module in (("torch", "torch"), ("cupy", "cupy")):
            try:
                __import__(module)
            except ImportError:
                with pytest.raises(BackendUnavailableError, match="pip install"):
                    get_array_backend(name)


class TestNumpyBackendIdentity:
    """The numpy backend must be the *identity*: bit-identical, no copies."""

    def test_matmul_numpy_is_plain_matmul(self, rng):
        a = rng.normal(size=(3, 5, 4))
        b = rng.normal(size=(3, 4, 6))
        assert np.array_equal(numpy_backend.matmul_numpy(a, b), np.matmul(a, b))

    def test_asarray_and_to_numpy_are_noops_on_float64(self, rng):
        array = rng.normal(size=(4, 4))
        assert numpy_backend.asarray(array) is array
        assert numpy_backend.to_numpy(array) is array

    def test_einsum_matches_numpy(self, rng):
        a = rng.normal(size=(2, 3, 4))
        b = rng.normal(size=(2, 4, 5))
        assert np.array_equal(
            numpy_backend.einsum("sij,sjk->sik", a, b),
            np.einsum("sij,sjk->sik", a, b),
        )


class TestModelIntegration:
    def test_models_default_to_numpy_backend(self):
        model = SoftmaxClassifier(4, 3, rng=0)
        assert model.array_backend is numpy_backend

    def test_use_array_backend_returns_self(self):
        model = SoftmaxClassifier(4, 3, rng=0)
        assert model.use_array_backend("numpy") is model
        assert model.array_backend is numpy_backend

    def test_explicit_numpy_backend_is_bit_identical(self):
        dataset = make_blobs(num_samples=64, num_features=6, num_classes=3, rng=1)
        features = dataset.features.reshape(2, 32, -1)
        labels = dataset.labels.reshape(2, 32)
        reference = MLPClassifier(6, 3, hidden_sizes=(5,), rng=2)
        routed = MLPClassifier(6, 3, hidden_sizes=(5,), rng=2).use_array_backend(
            NumpyBackend()
        )
        expected = reference.batch_loss_and_gradient(features, labels)
        actual = routed.batch_loss_and_gradient(features, labels)
        assert np.array_equal(actual[0], expected[0])
        assert np.array_equal(actual[1], expected[1])


@pytest.mark.parametrize("library", ["torch", "cupy"])
def test_optional_backend_equality(library, rng):
    """Optional-library backends agree with numpy to float64 tolerance.

    Skips cleanly when the wheel is not installed (the advisory CI job
    installs torch and runs this for real).
    """
    pytest.importorskip(library)
    backend = get_array_backend(library)
    assert isinstance(backend, ArrayBackend)
    a = rng.normal(size=(3, 8, 5))
    b = rng.normal(size=(3, 5, 7))
    product = backend.matmul_numpy(a, b)
    assert product.dtype == np.float64
    np.testing.assert_allclose(product, np.matmul(a, b), rtol=1e-10, atol=1e-12)

    dataset = make_blobs(num_samples=64, num_features=6, num_classes=3, rng=3)
    features = dataset.features.reshape(2, 32, -1)
    labels = dataset.labels.reshape(2, 32)
    reference = MLPClassifier(6, 3, hidden_sizes=(5,), rng=4)
    routed = MLPClassifier(6, 3, hidden_sizes=(5,), rng=4).use_array_backend(library)
    expected_losses, expected_gradients = reference.batch_loss_and_gradient(
        features, labels
    )
    losses, gradients = routed.batch_loss_and_gradient(features, labels)
    np.testing.assert_allclose(losses, expected_losses, rtol=1e-9)
    np.testing.assert_allclose(gradients, expected_gradients, rtol=1e-8, atol=1e-10)
