"""Unit tests for repro.learning.optimizers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.learning.optimizers import SGD, Adam, MomentumSGD
from repro.learning.optimizers import OptimizerError


def quadratic_gradient(theta: np.ndarray) -> np.ndarray:
    """Gradient of f(theta) = 0.5 ||theta - 3||^2."""
    return theta - 3.0


class TestSGD:
    def test_single_step(self):
        optimizer = SGD(learning_rate=0.1)
        theta = np.array([1.0, 2.0])
        grad = np.array([0.5, -0.5])
        updated = optimizer.step(theta, grad)
        assert np.allclose(updated, [0.95, 2.05])

    def test_converges_on_quadratic(self):
        optimizer = SGD(learning_rate=0.2)
        theta = np.zeros(4)
        for _ in range(100):
            theta = optimizer.step(theta, quadratic_gradient(theta))
        assert np.allclose(theta, 3.0, atol=1e-6)

    def test_does_not_mutate_inputs(self):
        optimizer = SGD(learning_rate=0.1)
        theta = np.ones(3)
        grad = np.ones(3)
        optimizer.step(theta, grad)
        assert np.allclose(theta, 1.0)
        assert np.allclose(grad, 1.0)

    def test_step_count(self):
        optimizer = SGD(learning_rate=0.1)
        theta = np.zeros(2)
        for expected in range(1, 4):
            theta = optimizer.step(theta, np.ones(2))
            assert optimizer.steps_taken == expected
        optimizer.reset()
        assert optimizer.steps_taken == 0

    def test_rejects_bad_learning_rate(self):
        with pytest.raises(OptimizerError):
            SGD(learning_rate=0.0)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(OptimizerError):
            SGD(0.1).step(np.zeros(3), np.zeros(4))


class TestMomentumSGD:
    def test_momentum_accumulates(self):
        optimizer = MomentumSGD(learning_rate=0.1, momentum=0.9)
        theta = np.zeros(1)
        grad = np.ones(1)
        first = optimizer.step(theta, grad)
        second = optimizer.step(first, grad)
        # The second step moves further than the first due to momentum.
        assert abs(second[0] - first[0]) > abs(first[0] - theta[0])

    def test_converges_on_quadratic(self):
        optimizer = MomentumSGD(learning_rate=0.05, momentum=0.8)
        theta = np.zeros(3)
        for _ in range(300):
            theta = optimizer.step(theta, quadratic_gradient(theta))
        assert np.allclose(theta, 3.0, atol=1e-4)

    def test_nesterov_variant_runs(self):
        optimizer = MomentumSGD(learning_rate=0.05, momentum=0.8, nesterov=True)
        theta = np.zeros(3)
        for _ in range(300):
            theta = optimizer.step(theta, quadratic_gradient(theta))
        assert np.allclose(theta, 3.0, atol=1e-3)

    def test_reset_clears_velocity(self):
        optimizer = MomentumSGD(learning_rate=0.1, momentum=0.9)
        theta = optimizer.step(np.zeros(2), np.ones(2))
        optimizer.reset()
        after_reset = optimizer.step(np.zeros(2), np.ones(2))
        assert np.allclose(theta, after_reset)

    def test_rejects_bad_momentum(self):
        with pytest.raises(OptimizerError):
            MomentumSGD(learning_rate=0.1, momentum=1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        optimizer = Adam(learning_rate=0.1)
        theta = np.zeros(5)
        for _ in range(500):
            theta = optimizer.step(theta, quadratic_gradient(theta))
        assert np.allclose(theta, 3.0, atol=1e-3)

    def test_first_step_magnitude_close_to_learning_rate(self):
        optimizer = Adam(learning_rate=0.01)
        updated = optimizer.step(np.zeros(1), np.array([5.0]))
        # Adam's first step is ~lr regardless of gradient scale.
        assert abs(updated[0]) == pytest.approx(0.01, rel=1e-3)

    def test_reset(self):
        optimizer = Adam(learning_rate=0.01)
        first = optimizer.step(np.zeros(2), np.ones(2))
        optimizer.reset()
        again = optimizer.step(np.zeros(2), np.ones(2))
        assert np.allclose(first, again)

    def test_rejects_bad_betas(self):
        with pytest.raises(OptimizerError):
            Adam(beta1=1.0)
        with pytest.raises(OptimizerError):
            Adam(beta2=-0.1)
        with pytest.raises(OptimizerError):
            Adam(epsilon=0.0)


class TestStepInplaceEquivalence:
    """step_inplace matches step bit for bit for every stateful optimiser."""

    FACTORIES = {
        "sgd": lambda: SGD(learning_rate=0.1),
        "momentum": lambda: MomentumSGD(learning_rate=0.05, momentum=0.9),
        "nesterov": lambda: MomentumSGD(
            learning_rate=0.05, momentum=0.9, nesterov=True
        ),
        "adam": lambda: Adam(learning_rate=0.01),
    }

    @pytest.mark.parametrize("name", sorted(FACTORIES))
    def test_inplace_trajectory_bit_identical(self, name):
        rng = np.random.default_rng(0)
        gradients = rng.normal(size=(20, 64))
        reference, inplace = self.FACTORIES[name](), self.FACTORIES[name]()
        theta_ref = np.zeros(64)
        theta_in = np.zeros(64)
        for gradient in gradients:
            theta_ref = reference.step(theta_ref, gradient)
            returned = inplace.step_inplace(theta_in, gradient)
            assert returned is theta_in  # updated the caller's buffer
            assert np.array_equal(theta_ref, theta_in)
        assert reference.steps_taken == inplace.steps_taken == 20

    @pytest.mark.parametrize("name", sorted(FACTORIES))
    def test_inplace_falls_back_on_readonly_buffers(self, name):
        optimizer = self.FACTORIES[name]()
        theta = np.zeros(8)
        theta.flags.writeable = False
        gradient = np.ones(8)
        updated = optimizer.step_inplace(theta, gradient)
        assert updated is not theta
        fresh = self.FACTORIES[name]()
        assert np.array_equal(updated, fresh.step(np.zeros(8), gradient))

    @pytest.mark.parametrize("name", sorted(FACTORIES))
    def test_mixing_step_then_step_inplace_keeps_state(self, name):
        """step() may build moment state before the first step_inplace();
        the in-place kernels must pick that state up, not crash or reset."""
        rng = np.random.default_rng(1)
        gradients = rng.normal(size=(6, 16))
        reference, mixed = self.FACTORIES[name](), self.FACTORIES[name]()
        theta_ref = np.zeros(16)
        theta_mixed = np.zeros(16)
        for gradient in gradients[:3]:
            theta_ref = reference.step(theta_ref, gradient)
            theta_mixed = mixed.step(theta_mixed, gradient)
        for gradient in gradients[3:]:
            theta_ref = reference.step(theta_ref, gradient)
            theta_mixed = mixed.step_inplace(theta_mixed.copy(), gradient)
        assert np.array_equal(theta_ref, theta_mixed)

    @pytest.mark.parametrize("name", ["momentum", "nesterov", "adam"])
    def test_inplace_state_resets_with_reset(self, name):
        optimizer = self.FACTORIES[name]()
        theta = np.zeros(4)
        first = optimizer.step_inplace(theta.copy(), np.ones(4)).copy()
        optimizer.reset()
        again = optimizer.step_inplace(theta.copy(), np.ones(4))
        assert np.array_equal(first, again)

    @pytest.mark.parametrize("name", ["momentum", "nesterov", "adam"])
    def test_inplace_buffers_track_shape_changes(self, name):
        optimizer = self.FACTORIES[name]()
        optimizer.step_inplace(np.zeros(4), np.ones(4))
        # A different parameter shape must rebuild the moment buffers, not
        # crash or silently reuse stale ones.
        updated = optimizer.step_inplace(np.zeros(6), np.ones(6))
        assert updated.shape == (6,)
