"""``multi_loss_and_gradient`` paired against looped ``loss_and_gradient``.

KER001 pairing tests for the stacked-evaluation kernel: both the generic
fallback (set-parameters-and-loop) and the vectorized overrides
(``SoftmaxClassifier``, ``MLPClassifier``, ``SimpleCNN``) must be
bit-identical to evaluating ``loss_and_gradient`` once per (chunk,
parameter vector) pair.  ``force_generic_kernels`` pins the stacked
overrides against the base-class loop as well, so both directions of the
pairing contract are exercised.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.learning.datasets import (
    make_blobs,
    make_image_classification,
    make_linear_regression,
)
from repro.learning.models import (
    LinearRegressionModel,
    MLPClassifier,
    SimpleCNN,
    SoftmaxClassifier,
    force_generic_kernels,
)


def _chunked_inputs(dataset, evaluations, chunk):
    features = np.stack(
        [dataset.features[i * chunk : (i + 1) * chunk] for i in range(evaluations)]
    )
    labels = np.stack(
        [dataset.labels[i * chunk : (i + 1) * chunk] for i in range(evaluations)]
    )
    return features, labels


def _looped_reference(model, features, labels, parameter_stack):
    """The scalar semantics: set_parameters + loss_and_gradient per row."""
    saved = model.parameters().copy()
    losses, gradients = [], []
    for i in range(parameter_stack.shape[0]):
        model.set_parameters(parameter_stack[i])
        loss, gradient = model.loss_and_gradient(features[i], labels[i])
        losses.append(loss)
        gradients.append(gradient)
    model.set_parameters(saved)
    return np.asarray(losses), np.stack(gradients)


def _parameter_stack(model, evaluations, seed):
    base = model.parameters()
    rng = np.random.default_rng(seed)
    return base[None, :] + 0.05 * rng.standard_normal((evaluations, base.size))


@pytest.mark.parametrize(
    "make_model",
    [
        pytest.param(
            lambda d: SoftmaxClassifier(d.num_features, d.num_classes, rng=1),
            id="softmax-vectorized-override",
        ),
        pytest.param(
            lambda d: MLPClassifier(
                d.num_features, d.num_classes, hidden_sizes=(8,), rng=1
            ),
            id="mlp-stacked-override",
        ),
    ],
)
def test_classifier_multi_matches_looped_scalar(make_model):
    evaluations, chunk = 4, 32
    dataset = make_blobs(
        num_samples=evaluations * chunk, num_features=12, num_classes=5, rng=0
    )
    model = make_model(dataset)
    features, labels = _chunked_inputs(dataset, evaluations, chunk)
    stack = _parameter_stack(model, evaluations, seed=7)

    expected_losses, expected_gradients = _looped_reference(
        model, features, labels, stack
    )
    losses, gradients = model.multi_loss_and_gradient(features, labels, stack)

    assert losses.shape == (evaluations,)
    assert gradients.shape == stack.shape
    assert np.array_equal(losses, expected_losses)
    assert np.array_equal(gradients, expected_gradients)


def test_regression_multi_matches_looped_scalar():
    evaluations, chunk = 3, 40
    dataset = make_linear_regression(
        num_samples=evaluations * chunk, num_features=9, noise=0.2, rng=2
    )
    model = LinearRegressionModel(dataset.num_features, rng=3)
    features, labels = _chunked_inputs(dataset, evaluations, chunk)
    stack = _parameter_stack(model, evaluations, seed=11)

    expected_losses, expected_gradients = _looped_reference(
        model, features, labels, stack
    )
    losses, gradients = model.multi_loss_and_gradient(features, labels, stack)

    assert np.array_equal(losses, expected_losses)
    assert np.array_equal(gradients, expected_gradients)


def test_multi_restores_live_parameters():
    """The kernel must leave the model's own parameters untouched."""
    dataset = make_blobs(num_samples=64, num_features=6, num_classes=3, rng=4)
    model = MLPClassifier(
        dataset.num_features, dataset.num_classes, hidden_sizes=(4,), rng=5
    )
    before = model.parameters().copy()
    features, labels = _chunked_inputs(dataset, 2, 32)
    stack = _parameter_stack(model, 2, seed=13)
    model.multi_loss_and_gradient(features, labels, stack)
    assert np.array_equal(model.parameters(), before)


@pytest.mark.parametrize("activation", ["relu", "tanh"])
@pytest.mark.parametrize(
    "hidden_sizes", [(), (8,), (9, 5)], ids=["hidden0", "hidden1", "hidden2"]
)
@pytest.mark.parametrize("seed", [0, 1])
def test_mlp_stacked_kernels_match_looped_scalar(activation, hidden_sizes, seed):
    """Stacked MLP multi/batch kernels vs per-pair ``loss_and_gradient``."""
    evaluations, chunk = 3, 24
    dataset = make_blobs(
        num_samples=evaluations * chunk, num_features=10, num_classes=4, rng=seed
    )
    model = MLPClassifier(
        dataset.num_features,
        dataset.num_classes,
        hidden_sizes=hidden_sizes,
        activation=activation,
        rng=seed + 1,
    )
    features, labels = _chunked_inputs(dataset, evaluations, chunk)
    stack = _parameter_stack(model, evaluations, seed=seed + 17)

    expected_losses, expected_gradients = _looped_reference(
        model, features, labels, stack
    )
    losses, gradients = model.multi_loss_and_gradient(features, labels, stack)
    assert np.array_equal(losses, expected_losses)
    assert np.array_equal(gradients, expected_gradients)

    # The stacked override and the forced base-class loop agree bitwise.
    with force_generic_kernels():
        generic_losses, generic_gradients = model.multi_loss_and_gradient(
            features, labels, stack
        )
    assert np.array_equal(losses, generic_losses)
    assert np.array_equal(gradients, generic_gradients)

    # Same contract for the shared-parameter batch kernel.
    batch_losses, batch_gradients = model.batch_loss_and_gradient(features, labels)
    for i in range(evaluations):
        loss_i, gradient_i = model.loss_and_gradient(features[i], labels[i])
        assert batch_losses[i] == loss_i
        assert np.array_equal(batch_gradients[i], gradient_i)


@pytest.mark.parametrize("flatten", [False, True], ids=["images-5d", "flat-3d"])
@pytest.mark.parametrize("seed", [0, 1])
def test_cnn_stacked_kernels_match_looped_scalar(flatten, seed):
    """Stacked SimpleCNN multi/batch kernels vs per-pair scalar calls."""
    evaluations, chunk = 3, 8
    dataset = make_image_classification(
        num_samples=evaluations * chunk,
        image_size=8,
        channels=2,
        num_classes=3,
        rng=seed,
    )
    model = SimpleCNN(
        image_size=8, channels=2, num_classes=3, num_filters=3, rng=seed + 1
    )
    features, labels = _chunked_inputs(dataset, evaluations, chunk)
    if flatten:
        features = features.reshape(evaluations, chunk, -1)
    stack = _parameter_stack(model, evaluations, seed=seed + 23)

    expected_losses, expected_gradients = _looped_reference(
        model, features, labels, stack
    )
    losses, gradients = model.multi_loss_and_gradient(features, labels, stack)
    assert np.array_equal(losses, expected_losses)
    assert np.array_equal(gradients, expected_gradients)

    with force_generic_kernels():
        generic_losses, generic_gradients = model.multi_loss_and_gradient(
            features, labels, stack
        )
    assert np.array_equal(losses, generic_losses)
    assert np.array_equal(gradients, generic_gradients)

    batch_losses, batch_gradients = model.batch_loss_and_gradient(features, labels)
    for i in range(evaluations):
        loss_i, gradient_i = model.loss_and_gradient(features[i], labels[i])
        assert batch_losses[i] == loss_i
        assert np.array_equal(batch_gradients[i], gradient_i)


@pytest.mark.parametrize(
    "make_model",
    [
        pytest.param(
            lambda d: MLPClassifier(
                d.num_features, d.num_classes, hidden_sizes=(6,), rng=1
            ),
            id="mlp",
        ),
        pytest.param(
            lambda d: SoftmaxClassifier(d.num_features, d.num_classes, rng=1),
            id="softmax",
        ),
    ],
)
def test_multi_restores_live_parameters_on_exception(make_model):
    """A mid-loop failure must still restore the model's own parameters."""
    dataset = make_blobs(num_samples=64, num_features=6, num_classes=3, rng=4)
    model = make_model(dataset)
    before = model.parameters().copy()
    features, labels = _chunked_inputs(dataset, 2, 32)
    stack = _parameter_stack(model, 2, seed=19)
    bad_labels = labels.copy()
    bad_labels[1, 0] = dataset.num_classes  # out of range: pair 1 raises
    with force_generic_kernels():
        with pytest.raises(Exception):
            model.multi_loss_and_gradient(features, bad_labels, stack)
    assert np.array_equal(model.parameters(), before)
    # The stacked overrides never touch live parameters either way.
    with pytest.raises(Exception):
        model.multi_loss_and_gradient(features, bad_labels, stack)
    assert np.array_equal(model.parameters(), before)


def test_single_row_matches_plain_loss_and_gradient():
    """A one-row stack is exactly one scalar ``loss_and_gradient`` call."""
    dataset = make_blobs(num_samples=32, num_features=8, num_classes=4, rng=6)
    model = SoftmaxClassifier(dataset.num_features, dataset.num_classes, rng=7)
    params = model.parameters().copy()
    expected_loss, expected_gradient = model.loss_and_gradient(
        dataset.features, dataset.labels
    )
    losses, gradients = model.multi_loss_and_gradient(
        dataset.features[None], dataset.labels[None], params[None]
    )
    assert losses[0] == expected_loss
    assert np.array_equal(gradients[0], expected_gradient)
