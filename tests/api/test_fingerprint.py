"""RunSpec.fingerprint: the content address of a run.

The fingerprint is the cache key of the run store, so two properties are
load-bearing: *stability* (the digest never depends on construction
order, default-vs-explicit fields, or the process that computes it) and
*sensitivity* (anything the engine contract says may change results —
seed, rng_version, array backend, a swapped plugin registration — must
change the key).
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys

import pytest

from repro.api import RunSpec, StragglerSpec, fingerprint
from repro.api.registry import SCHEMES
from repro.api.spec import STORE_SCHEMA_VERSION


@pytest.fixture()
def spec() -> RunSpec:
    return RunSpec(
        scheme="heter_aware",
        num_iterations=10,
        total_samples=2048,
        straggler=StragglerSpec(
            "artificial_delay", {"num_stragglers": 1, "delay_seconds": 2.0}
        ),
        rng_version=2,
        seed=7,
    )


class TestStability:
    def test_deterministic(self, spec):
        assert spec.fingerprint() == spec.fingerprint()

    def test_is_sha256_hex(self, spec):
        digest = spec.fingerprint()
        assert len(digest) == 64
        int(digest, 16)  # raises ValueError if not hex

    def test_module_level_alias(self, spec):
        assert fingerprint(spec) == spec.fingerprint()

    def test_default_vs_explicit_construction(self):
        implicit = RunSpec(scheme="naive", seed=0)
        explicit = RunSpec(
            scheme="naive",
            mode=implicit.mode,
            cluster=implicit.cluster,
            workload=implicit.workload,
            num_iterations=implicit.num_iterations,
            total_samples=implicit.total_samples,
            seed=0,
        )
        assert implicit.fingerprint() == explicit.fingerprint()

    def test_field_order_does_not_matter(self, spec):
        payload = spec.to_dict()
        reordered = dict(reversed(list(payload.items())))
        assert RunSpec.from_dict(reordered).fingerprint() == spec.fingerprint()

    def test_round_trip_preserves_fingerprint(self, spec):
        assert RunSpec.from_json(spec.to_json()).fingerprint() == spec.fingerprint()

    def test_digest_is_canonical_json_sha256(self, spec):
        canonical = json.dumps(
            spec._fingerprint_payload(), sort_keys=True, separators=(",", ":")
        )
        expected = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        assert spec.fingerprint() == expected
        assert spec._fingerprint_payload()["store_schema"] == STORE_SCHEMA_VERSION

    def test_cross_process_stability(self, spec):
        """A fresh interpreter must compute the identical digest."""
        program = (
            "import json, sys\n"
            "from repro.api import RunSpec\n"
            "spec = RunSpec.from_dict(json.loads(sys.argv[1]))\n"
            "print(spec.fingerprint())\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", program, spec.to_json()],
            capture_output=True,
            text=True,
            check=True,
            env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
        )
        assert completed.stdout.strip() == spec.fingerprint()


class TestSensitivity:
    @pytest.mark.parametrize(
        "changes",
        [
            {"seed": 8},
            {"rng_version": 1},
            {"array_backend": "torch"},
            {"scheme": "cyclic"},
            {"num_iterations": 11},
            {"cluster": "Cluster-B"},
        ],
        ids=lambda changes: next(iter(changes)),
    )
    def test_field_changes_change_key(self, spec, changes):
        assert spec.replace(**changes).fingerprint() != spec.fingerprint()

    def test_seed_none_still_fingerprints(self, spec):
        digest = spec.replace(seed=None).fingerprint()
        assert len(digest) == 64
        assert digest != spec.fingerprint()

    def test_plugin_swap_changes_key(self, spec):
        """Re-registering the scheme's builder under the same name rekeys."""
        original = SCHEMES.get(spec.scheme)
        metadata = dict(SCHEMES.metadata(spec.scheme))
        before = spec.fingerprint()

        def replacement(*args, **kwargs):  # pragma: no cover - never called
            return original(*args, **kwargs)

        SCHEMES.add(spec.scheme, replacement, replace=True)
        try:
            assert spec.fingerprint() != before
        finally:
            SCHEMES.add(spec.scheme, original, replace=True, **metadata)
        assert spec.fingerprint() == before

    def test_unknown_plugin_maps_to_none(self, spec):
        """Fingerprints stay computable before validation catches the name."""
        unknown = spec.replace(cluster="No-Such-Cluster")
        payload = unknown._fingerprint_payload()
        assert payload["plugins"]["cluster"] is None
        assert len(unknown.fingerprint()) == 64
