"""FileRunStore: JSON-exact persistence and crash safety.

The store's contract is dict-like (``fingerprint -> RunResult``) with two
teeth: every stored result round-trips JSON-exactly (``get(fp).to_json()
== result.to_json()``), and *any* incomplete segment — truncated payload,
corrupt descriptor, orphaned binary, leftover temp file — reads as a miss
rather than a wrong answer.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api import Engine, RunSpec, StragglerSpec
from repro.store import (
    STORE_DIR_ENV,
    FileRunStore,
    RunStore,
    StoreError,
    default_store_path,
    open_store,
)


@pytest.fixture(scope="module")
def engine() -> Engine:
    return Engine()


@pytest.fixture(scope="module")
def timing_result(engine):
    return engine.run(
        RunSpec(
            scheme="heter_aware",
            num_iterations=5,
            total_samples=1024,
            straggler=StragglerSpec(
                "artificial_delay", {"num_stragglers": 1, "delay_seconds": 1.0}
            ),
            rng_version=2,
            seed=0,
        )
    )


@pytest.fixture(scope="module")
def training_result(engine):
    return engine.run(
        RunSpec(
            mode="training",
            scheme="naive",
            workload="blobs_softmax",
            total_samples=128,
            num_iterations=3,
            num_stragglers=0,
            loss_eval_samples=64,
            seed=0,
        )
    )


@pytest.fixture()
def store(tmp_path) -> FileRunStore:
    return FileRunStore(tmp_path / "store")


class TestRoundTrip:
    @pytest.mark.parametrize("which", ["timing", "training"])
    def test_json_exact(self, store, timing_result, training_result, which):
        result = timing_result if which == "timing" else training_result
        fingerprint = store.put_result(result)
        restored = store.get(fingerprint)
        assert restored is not None
        assert restored.to_json() == result.to_json()

    def test_get_result_by_spec(self, store, timing_result):
        store.put_result(timing_result)
        restored = store.get_result(timing_result.spec)
        assert restored is not None
        assert restored.spec == timing_result.spec

    def test_contains_and_fingerprints(self, store, timing_result):
        fingerprint = timing_result.spec.fingerprint()
        assert fingerprint not in store
        assert not store.contains(fingerprint)
        store.put(fingerprint, timing_result)
        assert fingerprint in store
        assert store.fingerprints() == (fingerprint,)

    def test_put_is_idempotent(self, store, timing_result):
        fingerprint = store.put_result(timing_result)
        store.put(fingerprint, timing_result)
        assert store.fingerprints() == (fingerprint,)
        assert store.get(fingerprint).to_json() == timing_result.to_json()

    def test_miss_returns_none(self, store):
        assert store.get("0" * 64) is None

    def test_stats(self, store, timing_result):
        store.put_result(timing_result)
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        assert stats["root"] == str(store.root)


class TestCrashSafety:
    def test_truncated_payload_is_a_miss(self, store, timing_result):
        fingerprint = store.put_result(timing_result)
        payload_path = store._payload_path(fingerprint)
        payload_path.write_bytes(payload_path.read_bytes()[:-8])
        assert store.get(fingerprint) is None
        assert not store.contains(fingerprint)
        assert store.fingerprints() == ()

    def test_corrupt_descriptor_is_a_miss(self, store, timing_result):
        fingerprint = store.put_result(timing_result)
        store._descriptor_path(fingerprint).write_text("{not json", "utf-8")
        assert store.get(fingerprint) is None
        assert not store.contains(fingerprint)

    def test_orphaned_payload_is_a_miss(self, store, timing_result):
        # A crash between the payload write and the descriptor write.
        fingerprint = timing_result.spec.fingerprint()
        store._payload_path(fingerprint).write_bytes(b"\x00" * 128)
        assert store.get(fingerprint) is None
        assert store.fingerprints() == ()

    def test_temp_files_are_invisible(self, store, timing_result):
        fingerprint = store.put_result(timing_result)
        (store._runs / ".tmp-crash-leftover").write_bytes(b"partial")
        assert store.fingerprints() == (fingerprint,)

    def test_gc_drops_unkept_and_sweeps_debris(
        self, store, timing_result, training_result
    ):
        kept = store.put_result(timing_result)
        dropped = store.put_result(training_result)
        (store._runs / ".tmp-crash-leftover").write_bytes(b"partial")
        store._payload_path("f" * 64).write_bytes(b"orphan")
        removed = store.gc(keep=[kept])
        assert removed == 1  # descriptors removed; debris doesn't count
        assert store.fingerprints() == (kept,)
        assert dropped not in store
        assert not (store._runs / ".tmp-crash-leftover").exists()
        assert not store._payload_path("f" * 64).exists()

    def test_incomplete_kept_segment_is_still_collected(
        self, store, timing_result
    ):
        fingerprint = store.put_result(timing_result)
        store._payload_path(fingerprint).unlink()
        store.gc(keep=[fingerprint])
        assert not store._descriptor_path(fingerprint).exists()


class TestFormatMarker:
    def test_marker_written_on_create(self, tmp_path):
        store = FileRunStore(tmp_path / "store")
        marker = json.loads((store.root / "store.json").read_text("utf-8"))
        assert marker == {"format": "repro-run-store", "store_schema": 1}

    def test_reopen_is_fine(self, tmp_path, timing_result):
        first = FileRunStore(tmp_path / "store")
        fingerprint = first.put_result(timing_result)
        second = FileRunStore(tmp_path / "store")
        assert second.get(fingerprint).to_json() == timing_result.to_json()

    def test_foreign_marker_raises(self, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        (root / "store.json").write_text('{"format": "something-else"}', "utf-8")
        with pytest.raises(StoreError, match="not a repro run store"):
            FileRunStore(root)

    def test_schema_mismatch_raises(self, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        (root / "store.json").write_text(
            '{"format": "repro-run-store", "store_schema": 999}', "utf-8"
        )
        with pytest.raises(StoreError, match="store schema mismatch"):
            FileRunStore(root)

    def test_future_segment_schema_is_a_miss(self, store, timing_result):
        fingerprint = store.put_result(timing_result)
        descriptor_path = store._descriptor_path(fingerprint)
        descriptor = json.loads(descriptor_path.read_text("utf-8"))
        descriptor["store_schema"] = 999
        descriptor_path.write_text(json.dumps(descriptor), "utf-8")
        assert store.get(fingerprint) is None


class TestOpenStore:
    def test_default_path_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path / "env-store"))
        assert default_store_path() == Path(tmp_path / "env-store")
        store = open_store()
        assert isinstance(store, FileRunStore)
        assert store.root == tmp_path / "env-store"

    def test_default_path_without_env(self, monkeypatch):
        monkeypatch.delenv(STORE_DIR_ENV, raising=False)
        assert default_store_path() == Path.home() / ".cache" / "repro" / "run_store"

    def test_open_store_with_explicit_path(self, tmp_path):
        store = open_store(tmp_path / "explicit")
        assert isinstance(store, FileRunStore)
        assert store.root == tmp_path / "explicit"

    def test_unknown_kind_raises(self, tmp_path):
        with pytest.raises(Exception, match="no-such-store"):
            open_store(tmp_path, kind="no-such-store")

    def test_store_names_importable_from_repro_api(self):
        import repro.api as api

        assert api.RunStore is RunStore
        assert api.FileRunStore is FileRunStore
        assert api.open_store is open_store
        with pytest.raises(AttributeError):
            api.NoSuchName
