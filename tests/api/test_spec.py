"""RunSpec: validation, coercion, immutability and JSON round-trips."""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import NetworkSpec, RunSpec, SpecError, StragglerSpec


class TestValidation:
    def test_defaults_are_valid(self):
        spec = RunSpec()
        assert spec.scheme == "heter_aware"
        assert spec.mode == "timing"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_iterations": 0},
            {"num_iterations": -3},
            {"total_samples": 0},
            {"num_stragglers": -1},
            {"num_partitions": 0},
            {"partitions_multiplier": 0},
            {"gradient_bytes": -1.0},
            {"learning_rate": 0.0},
            {"ssp_batch_size": 0},
            {"loss_eval_samples": -1},
            {"record_loss_every": 0},
            {"scheme": ""},
            {"cluster": ""},
            {"mode": ""},
            {"rng_version": 0},
            {"rng_version": 3},
            {"rng_version": -1},
        ],
    )
    def test_rejects_invalid_fields(self, kwargs):
        with pytest.raises(SpecError):
            RunSpec(**kwargs)

    def test_rng_version_defaults_to_v1(self):
        assert RunSpec().rng_version == 1

    def test_rng_version_accepts_both_layouts(self):
        assert RunSpec(rng_version=1).rng_version == 1
        assert RunSpec(rng_version=2).rng_version == 2

    def test_rng_version_error_names_supported_versions(self):
        with pytest.raises(SpecError, match=r"supported versions: \[1, 2\]"):
            RunSpec(rng_version=7)

    def test_rng_version_round_trips_through_json(self):
        spec = RunSpec(rng_version=2)
        assert RunSpec.from_json(spec.to_json()) == spec
        assert spec.to_dict()["rng_version"] == 2

    def test_pre_rng_version_payloads_still_load(self):
        # Spec JSON written before the field existed defaults to v1.
        data = RunSpec().to_dict()
        del data["rng_version"]
        assert RunSpec.from_dict(data).rng_version == 1

    def test_array_backend_defaults_to_numpy(self):
        assert RunSpec().array_backend == "numpy"

    def test_array_backend_rejects_empty(self):
        with pytest.raises(SpecError, match="array_backend"):
            RunSpec(array_backend="")

    def test_array_backend_round_trips_through_json(self):
        spec = RunSpec(array_backend="torch")
        assert RunSpec.from_json(spec.to_json()) == spec
        assert spec.to_dict()["array_backend"] == "torch"

    def test_pre_array_backend_payloads_still_load(self):
        # Spec JSON written before the field existed defaults to numpy.
        data = RunSpec().to_dict()
        del data["array_backend"]
        assert RunSpec.from_dict(data).array_backend == "numpy"

    def test_straggler_mapping_requires_kind(self):
        with pytest.raises(SpecError, match="kind"):
            RunSpec(straggler={"params": {"delay_seconds": 1.0}})

    def test_straggler_mapping_rejects_unknown_keys(self):
        with pytest.raises(SpecError):
            RunSpec(straggler={"kind": "none", "bogus": 1})

    def test_frozen(self):
        spec = RunSpec()
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.scheme = "naive"


class TestCoercion:
    def test_straggler_from_string(self):
        spec = RunSpec(straggler="bursty")
        assert spec.straggler == StragglerSpec("bursty")

    def test_straggler_from_mapping(self):
        spec = RunSpec(
            straggler={"kind": "artificial_delay", "params": {"delay_seconds": 2.0}}
        )
        assert spec.straggler.kind == "artificial_delay"
        assert spec.straggler.params == {"delay_seconds": 2.0}

    def test_network_from_string(self):
        spec = RunSpec(network="zero")
        assert spec.network == NetworkSpec("zero")

    def test_replace_revalidates(self):
        spec = RunSpec()
        with pytest.raises(SpecError):
            spec.replace(num_iterations=-1)

    def test_replace_returns_new_spec(self):
        spec = RunSpec()
        other = spec.replace(scheme="cyclic")
        assert other.scheme == "cyclic"
        assert spec.scheme == "heter_aware"

    def test_resolved_total_samples(self):
        assert RunSpec(mode="timing").resolved_total_samples() == 2048
        assert RunSpec(mode="timing", total_samples=64).resolved_total_samples() == 64
        assert RunSpec(mode="training").resolved_total_samples() is None


class TestSerialization:
    def test_json_round_trip_defaults(self):
        spec = RunSpec()
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_json_round_trip_full(self):
        spec = RunSpec(
            scheme="group_based",
            mode="training",
            cluster="Cluster-C",
            cluster_options={"samples_per_second_per_vcpu": 25.0},
            workload="cifar10_softmax",
            num_iterations=7,
            total_samples=512,
            num_stragglers=2,
            num_partitions=64,
            partitions_multiplier=3,
            straggler=StragglerSpec("transient", {"probability": 0.1}),
            network=NetworkSpec("overlapped", {"overlap_fraction": 0.25}),
            gradient_bytes=1024.0,
            learning_rate=0.3,
            ssp_staleness=5.0,
            ssp_batch_size=16,
            loss_eval_samples=128,
            record_loss_every=2,
            seed=42,
        )
        restored = RunSpec.from_json(spec.to_json())
        assert restored == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(SpecError, match="unknown RunSpec fields"):
            RunSpec.from_dict({"scheme": "naive", "bogus_knob": 1})

    def test_to_dict_is_plain_data(self):
        data = RunSpec(straggler="bursty").to_dict()
        assert data["straggler"] == {"kind": "bursty", "params": {}}
        assert data["network"] == {"kind": "simple", "params": {}}

    def test_vcpu_counts_round_trips_with_int_keys(self):
        spec = RunSpec(
            cluster="custom", cluster_options={"vcpu_counts": {8: 2, 4: 1}}
        )
        restored = RunSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.cluster_options["vcpu_counts"] == {8: 2, 4: 1}

    def test_bad_vcpu_counts_rejected(self):
        with pytest.raises(SpecError, match="vcpu_counts"):
            RunSpec(cluster_options={"vcpu_counts": {"eight": 2}})
