"""Plugin registries: decorator registration, lookups, error paths."""

from __future__ import annotations

import pytest

from repro.api import Engine, Registry, RegistryError, RunSpec
from repro.api.registry import CLUSTERS, PROTOCOLS, SCHEMES, WORKLOADS
from repro.coding import SCHEME_NAMES, CodingError, build_strategy
from repro.coding.registry import register_scheme, registered_schemes
from repro.coding.types import CodingStrategy
from repro.experiments.clusters import build_cluster, register_cluster
from repro.experiments.workloads import Workload, get_workload, register_workload
from repro.protocols import PROTOCOL_NAMES
from repro.protocols.base import ProtocolError
from repro.protocols.runner import make_protocol


class TestRegistryBasics:
    def test_register_and_get(self):
        registry = Registry("thing")

        @registry.register("alpha", flavour="sweet")
        def build_alpha():
            return "a"

        assert "alpha" in registry
        assert registry.get("alpha") is build_alpha
        assert registry.metadata("alpha") == {"flavour": "sweet"}
        assert registry.names() == ("alpha",)

    def test_register_infers_name(self):
        registry = Registry("thing")

        @registry.register()
        def my_builder():
            return None

        assert "my_builder" in registry

    def test_unknown_name_error_lists_choices(self):
        registry = Registry("thing")
        registry.add("alpha", object())
        with pytest.raises(RegistryError, match="unknown thing 'beta'.*alpha"):
            registry.get("beta")

    def test_registry_error_is_a_key_error(self):
        registry = Registry("thing")
        with pytest.raises(KeyError):
            registry.get("missing")

    def test_duplicate_registration_rejected(self):
        registry = Registry("thing")
        registry.add("alpha", 1)
        with pytest.raises(RegistryError, match="already registered"):
            registry.add("alpha", 2)
        registry.add("alpha", 2, replace=True)
        assert registry.get("alpha") == 2

    def test_unregister(self):
        registry = Registry("thing")
        registry.add("alpha", 1)
        registry.unregister("alpha")
        assert "alpha" not in registry


class TestBuiltinRegistrations:
    def test_builtin_schemes_registered(self):
        assert set(SCHEME_NAMES) <= set(SCHEMES.names())
        assert registered_schemes() == SCHEMES.names()

    def test_builtin_protocols_registered(self):
        assert set(PROTOCOL_NAMES) <= set(PROTOCOLS.names())

    def test_builtin_clusters_registered(self):
        for name in ("Cluster-A", "Cluster-B", "Cluster-C", "Cluster-D"):
            assert name in CLUSTERS
        assert CLUSTERS.metadata("Cluster-D")["num_workers"] == 58

    def test_scheme_partitioning_metadata(self):
        assert SCHEMES.metadata("naive")["partitioning"] == "uniform"
        assert SCHEMES.metadata("heter_aware")["partitioning"] == "multiplier"

    def test_unknown_scheme_raises_coding_error(self):
        with pytest.raises(CodingError, match="unknown scheme"):
            build_strategy("bogus", [1.0, 2.0], 2, 1)

    def test_unknown_protocol_raises_protocol_error(self):
        with pytest.raises(ProtocolError, match="unknown protocol"):
            make_protocol("bogus")

    def test_unknown_cluster_raises_key_error(self):
        with pytest.raises(KeyError, match="unknown cluster"):
            build_cluster("Cluster-Z")

    def test_unknown_workload_raises_key_error(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("bogus")


class TestPluginFlow:
    """A scheme/cluster/workload registered by a plugin works end to end."""

    def test_custom_scheme_through_engine(self):
        from repro.coding.naive import naive_strategy

        @register_scheme("test_uniform_clone", partitioning="uniform")
        def _build(throughputs, num_partitions, num_stragglers, rng=None) -> CodingStrategy:
            return naive_strategy(len(throughputs), num_partitions)

        try:
            result = Engine().run(
                RunSpec(
                    scheme="test_uniform_clone",
                    num_iterations=2,
                    total_samples=64,
                    num_stragglers=0,
                    seed=0,
                )
            )
            assert result.metrics["num_iterations"] == 2
            assert result.completed
        finally:
            SCHEMES.unregister("test_uniform_clone")

    def test_custom_cluster_through_engine(self):
        from repro.simulation.cluster import cluster_from_vcpu_counts

        @register_cluster("test-tiny-cluster")
        def _build(samples_per_second_per_vcpu=50.0, machine_spread=0.05,
                   compute_noise=0.02, rng=0):
            return cluster_from_vcpu_counts(
                "test-tiny-cluster",
                {2: 2, 4: 2},
                samples_per_second_per_vcpu=samples_per_second_per_vcpu,
                machine_spread=machine_spread,
                compute_noise=compute_noise,
                rng=rng,
            )

        try:
            result = Engine().run(
                RunSpec(cluster="test-tiny-cluster", num_iterations=2,
                        total_samples=64, seed=0)
            )
            assert result.trace.metadata["num_workers"] == 4
        finally:
            CLUSTERS.unregister("test-tiny-cluster")

    def test_custom_workload_registration(self):
        from repro.learning.datasets import make_blobs
        from repro.learning.models import SoftmaxClassifier

        workload = Workload(
            name="test_blobs",
            dataset_factory=lambda n, seed: make_blobs(
                num_samples=n, num_features=4, num_classes=2, rng=seed
            ),
            model_factory=lambda ds, seed: SoftmaxClassifier(
                ds.num_features, ds.num_classes, rng=seed
            ),
            default_samples=32,
            description="test workload",
        )
        register_workload(workload)
        try:
            assert get_workload("test_blobs") is workload
            result = Engine().run(
                RunSpec(
                    mode="training",
                    scheme="naive",
                    workload="test_blobs",
                    num_iterations=2,
                    total_samples=32,
                    num_stragglers=0,
                    seed=0,
                )
            )
            assert result.metrics["num_iterations"] == 2
        finally:
            WORKLOADS.unregister("test_blobs")
