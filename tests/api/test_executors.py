"""Pluggable executors: every transport is bit-identical to serial.

The executor layer decides where runs execute and how results move back
(in-process, pickled ``RunResult`` objects, shared-memory columns); the
whole contract is that none of that is visible in the results.  These tests
serialise results to JSON (NaN-safe) and demand exact textual equality
across every builtin executor, for stacked timing sweeps, stacked training
sweeps and ragged mixed sweeps alike — plus the lifetime contract: no
``/dev/shm`` segment survives a completed sweep.
"""

from __future__ import annotations

import gc
import json
import os

import pytest

from repro.api import (
    EXECUTORS,
    Engine,
    Executor,
    ExecutorError,
    ProcessShmExecutor,
    RunSpec,
    SerialExecutor,
    StragglerSpec,
    register_executor,
)
from repro.api.engine import EngineError, _available_cpu_count
from repro.api.executors import resolve_executor
from repro.api.registry import RegistryError

ALL_EXECUTORS = ("serial", "process", "process_shm", "thread")

_SHM_DIR = "/dev/shm"


def shm_segments() -> set:
    if not os.path.isdir(_SHM_DIR):  # pragma: no cover - non-Linux fallback
        return set()
    return {name for name in os.listdir(_SHM_DIR) if name.startswith("psm_")}


@pytest.fixture(autouse=True)
def no_leaked_segments():
    before = shm_segments()
    yield
    gc.collect()
    leaked = shm_segments() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def results_json(results) -> str:
    return json.dumps(
        [r.to_dict() for r in results], default=repr, sort_keys=True
    )


@pytest.fixture(scope="module")
def engine() -> Engine:
    return Engine()


@pytest.fixture(scope="module")
def timing_spec() -> RunSpec:
    # rng_version=2 + explicit seed: the sweep planner stacks these, so the
    # executors are offered whole groups, exercising the group transport.
    return RunSpec(
        scheme="naive",
        num_iterations=6,
        total_samples=512,
        straggler=StragglerSpec(
            "artificial_delay", {"num_stragglers": 1, "delay_seconds": 1.0}
        ),
        rng_version=2,
        seed=3,
    )


@pytest.fixture(scope="module")
def training_spec() -> RunSpec:
    return RunSpec(
        scheme="ssp",
        mode="training",
        workload="nonseparable_blobs",
        num_iterations=4,
        total_samples=256,
        rng_version=2,
        seed=11,
    )


class TestRegistry:
    def test_builtins_registered(self):
        for name in ALL_EXECUTORS:
            assert name in EXECUTORS

    def test_resolve_instance_passthrough(self):
        instance = SerialExecutor()
        assert resolve_executor(instance) is instance
        assert resolve_executor(None) is None

    def test_resolve_unknown_name_lists_options(self):
        with pytest.raises(RegistryError, match="serial"):
            resolve_executor("warp_drive")

    def test_resolve_rejects_non_executor_argument(self):
        with pytest.raises(ExecutorError, match="Executor"):
            resolve_executor(42)  # type: ignore[arg-type]

    def test_custom_executor_usable_by_name(self, engine, timing_spec):
        calls = []

        @register_executor("counting_serial")
        class CountingSerial(Executor):
            name = "counting_serial"

            def run_specs(self, engine, specs, workers):
                calls.append(len(specs))
                return [engine.run(spec) for spec in specs]

        try:
            results = engine.run_many([timing_spec], executor="counting_serial")
            assert calls == [1]
            assert results_json(results) == results_json([engine.run(timing_spec)])
        finally:
            EXECUTORS.unregister("counting_serial")


class TestBitIdentity:
    @pytest.mark.parametrize("name", ALL_EXECUTORS)
    def test_stacked_timing_sweep(self, engine, timing_spec, name):
        seeds = list(range(3, 9))
        reference = engine.sweep(timing_spec, executor="serial", seed=seeds)
        candidate = engine.sweep(timing_spec, executor=name, seed=seeds)
        assert results_json(candidate) == results_json(reference)

    @pytest.mark.parametrize("name", ALL_EXECUTORS)
    def test_stacked_training_sweep(self, engine, training_spec, name):
        seeds = [11, 12, 13]
        reference = engine.sweep(training_spec, executor="serial", seed=seeds)
        candidate = engine.sweep(training_spec, executor=name, seed=seeds)
        assert results_json(candidate) == results_json(reference)

    @pytest.mark.parametrize("name", ("process_shm", "thread"))
    def test_ragged_mixed_sweep(self, engine, timing_spec, name):
        # Two schemes -> two stacked groups; rng_version=1 members join the
        # un-stackable remainder, so group dispatch and the run_many
        # fallback both execute under the same executor.
        axes = {"scheme": ["naive", "cyclic"], "rng_version": [2, 1]}
        reference = engine.sweep(timing_spec, executor="serial", **axes)
        candidate = engine.sweep(timing_spec, executor=name, **axes)
        assert results_json(candidate) == results_json(reference)

    @pytest.mark.parametrize("name", ALL_EXECUTORS)
    def test_run_many_single_spec(self, engine, timing_spec, name):
        reference = results_json([engine.run(timing_spec)])
        assert results_json(
            engine.run_many([timing_spec], executor=name)
        ) == reference

    def test_compare_accepts_executor(self, engine, timing_spec):
        schemes = ["naive", "heter_aware"]
        reference = engine.compare(timing_spec, schemes)
        candidate = engine.compare(timing_spec, schemes, executor="process_shm")
        assert list(candidate) == schemes
        assert results_json(candidate.values()) == results_json(reference.values())

    def test_default_executor_keeps_legacy_behaviour(self, engine, timing_spec):
        seeds = list(range(3, 7))
        specs = [timing_spec.replace(seed=s) for s in seeds]
        assert results_json(
            engine.run_many(specs, parallel=2)
        ) == results_json(engine.run_many(specs))


class TestInjectedBackends:
    @pytest.fixture()
    def injected_engine(self, engine, timing_spec):
        real = Engine()
        return Engine(
            backends={"timing": lambda spec: real.run(spec).trace}
        )

    @pytest.mark.parametrize("name", ("process", "process_shm"))
    def test_subprocess_executors_reject_injected_backends(
        self, injected_engine, timing_spec, name
    ):
        with pytest.raises(EngineError, match="registry-backed"):
            injected_engine.run_many([timing_spec], executor=name)

    @pytest.mark.parametrize("name", ("serial", "thread"))
    def test_in_process_executors_accept_injected_backends(
        self, engine, injected_engine, timing_spec, name
    ):
        results = injected_engine.run_many(
            [timing_spec, timing_spec.replace(seed=4)], executor=name
        )
        reference = engine.run_many([timing_spec, timing_spec.replace(seed=4)])
        assert results_json(results) == results_json(reference)

    def test_injected_backend_sweep_still_serial_by_default(
        self, injected_engine, timing_spec
    ):
        # executor=None: injected-backend specs are never stackable and the
        # serial fallback handles them — the historical contract.
        results = injected_engine.sweep(timing_spec, seed=[3, 4])
        assert len(results) == 2


class TestResolveParallel:
    def test_parallel_true_uses_process_cpu_count(self, monkeypatch):
        monkeypatch.setattr(os, "process_cpu_count", lambda: 3, raising=False)
        assert _available_cpu_count() == 3
        assert Engine._resolve_parallel(True, 100) == 3

    def test_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delattr(os, "process_cpu_count", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 5)
        assert _available_cpu_count() == 5
        assert Engine._resolve_parallel(True, 100) == 5

    def test_survives_none_returns(self, monkeypatch):
        monkeypatch.setattr(os, "process_cpu_count", lambda: None, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert _available_cpu_count() == 1


class TestShmLifetime:
    def test_completed_sweep_leaves_no_segments(self, engine, timing_spec):
        before = shm_segments()
        engine.sweep(timing_spec, executor="process_shm", seed=[3, 4, 5, 6])
        assert shm_segments() == before

    def test_failed_run_leaves_no_segments(self, engine, timing_spec):
        bad = timing_spec.replace(scheme="no_such_scheme")
        before = shm_segments()
        with pytest.raises(EngineError, match="unknown scheme"):
            engine.run_many([timing_spec, bad], executor="process_shm")
        assert shm_segments() == before

    def test_worker_exception_cleans_published_segments(self, engine, timing_spec):
        # One group dies inside the worker (after validation) while its
        # sibling publishes a segment; the dispatch must unlink the healthy
        # worker's segment before re-raising.
        executor = ProcessShmExecutor()
        before = shm_segments()
        with pytest.raises(Exception):
            executor._dispatch(
                [[timing_spec], [timing_spec.replace(num_iterations=-1)]],
                workers=2,
            )
        assert shm_segments() == before


class TestCli:
    @pytest.mark.parametrize("name", ("serial", "process_shm"))
    def test_run_with_executor_matches_default(self, capsys, name):
        from repro.cli import main

        argv = [
            "run",
            "--scheme",
            "naive",
            "--iterations",
            "3",
            "--samples",
            "512",
            "--delay",
            "1.0",
            "--rng-version",
            "2",
            "--json",
        ]
        assert main(argv) == 0
        reference = capsys.readouterr().out
        assert main([*argv, "--executor", name]) == 0
        assert capsys.readouterr().out == reference
