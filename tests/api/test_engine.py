"""Engine: dispatch, validation errors, sweep/compare, legacy equivalence.

The equivalence tests are the contract of the API redesign: running a spec
through ``Engine`` must reproduce the legacy ``measure_timing_trace`` /
``run_scheme`` outputs seed-for-seed, because the figure experiments now
route through the engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Engine, EngineError, RunSpec, SpecError, StragglerSpec
from repro.experiments.clusters import build_cluster
from repro.experiments.common import measure_timing_trace
from repro.experiments.workloads import get_workload
from repro.learning.optimizers import SGD
from repro.protocols.base import TrainingConfig
from repro.protocols.runner import run_scheme
from repro.simulation.network import SimpleNetwork
from repro.simulation.stragglers import ArtificialDelay, TransientSlowdown


class TestValidation:
    def test_unknown_mode(self):
        with pytest.raises(EngineError, match="unknown mode"):
            Engine().run(RunSpec(mode="quantum"))

    def test_unknown_scheme(self):
        with pytest.raises(EngineError, match="unknown scheme"):
            Engine().run(RunSpec(scheme="bogus", num_iterations=1, total_samples=8))

    def test_unknown_protocol_in_training_mode(self):
        with pytest.raises(EngineError, match="unknown protocol"):
            Engine().run(RunSpec(mode="training", scheme="bogus"))

    def test_unknown_cluster(self):
        with pytest.raises(EngineError, match="unknown cluster"):
            Engine().run(RunSpec(cluster="Cluster-Z"))

    def test_unknown_workload(self):
        with pytest.raises(EngineError, match="unknown workload"):
            Engine().run(RunSpec(mode="training", scheme="naive", workload="bogus"))

    def test_rejects_non_spec(self):
        with pytest.raises(SpecError, match="expects a RunSpec"):
            Engine().run({"scheme": "naive"})

    def test_unknown_array_backend_in_training_mode(self):
        with pytest.raises(EngineError, match="unknown array backend"):
            Engine().run(
                RunSpec(mode="training", scheme="naive", array_backend="bogus")
            )

    def test_explicit_numpy_array_backend_is_bit_identical(self):
        base = RunSpec(
            mode="training",
            scheme="ssp",
            workload="cifar10_mlp",
            num_iterations=3,
            total_samples=256,
            seed=0,
        )
        default = Engine().run(base)
        explicit = Engine().run(base.replace(array_backend="numpy"))
        assert default.metrics["final_loss"] == explicit.metrics["final_loss"]
        np.testing.assert_array_equal(
            default.trace.durations, explicit.trace.durations
        )

    def test_ssp_is_a_protocol_not_a_scheme(self):
        with pytest.raises(EngineError, match="unknown scheme"):
            Engine().run(RunSpec(scheme="ssp", mode="timing"))

    def test_backend_override(self):
        sentinel_specs = []

        def fake_backend(spec):
            sentinel_specs.append(spec)
            return measure_timing_trace(
                "naive",
                build_cluster("Cluster-A", rng=0),
                num_stragglers=0,
                total_samples=64,
                num_iterations=1,
                seed=0,
            )

        engine = Engine(backends={"timing": fake_backend})
        result = engine.run(RunSpec(scheme="naive", num_iterations=1, total_samples=64))
        assert len(sentinel_specs) == 1
        assert result.metrics["num_iterations"] == 1
        with pytest.raises(EngineError, match="unknown mode"):
            engine.run(RunSpec(mode="training", scheme="naive"))


class TestTimingEquivalence:
    """Engine timing runs match the legacy direct calls seed-for-seed."""

    @pytest.mark.parametrize("scheme", ["naive", "cyclic", "heter_aware", "group_based"])
    def test_matches_measure_timing_trace(self, scheme):
        seed = 7
        cluster = build_cluster("Cluster-A", rng=seed)
        legacy = measure_timing_trace(
            scheme,
            cluster,
            num_stragglers=1,
            total_samples=1024,
            num_iterations=5,
            injector=ArtificialDelay(num_stragglers=1, delay_seconds=1.5),
            network=SimpleNetwork(),
            seed=seed,
        )
        result = Engine().run(
            RunSpec(
                scheme=scheme,
                cluster="Cluster-A",
                num_stragglers=1,
                total_samples=1024,
                num_iterations=5,
                straggler=StragglerSpec(
                    "artificial_delay",
                    {"num_stragglers": 1, "delay_seconds": 1.5},
                ),
                seed=seed,
            )
        )
        np.testing.assert_array_equal(result.trace.durations, legacy.durations)
        assert result.trace.metadata["loads"] == legacy.metadata["loads"]
        assert result.mean_iteration_time == pytest.approx(
            float(legacy.durations.mean())
        )

    def test_transient_model_matches(self):
        seed = 3
        cluster = build_cluster("Cluster-B", rng=seed)
        legacy = measure_timing_trace(
            "heter_aware",
            cluster,
            num_stragglers=1,
            total_samples=1024,
            num_iterations=4,
            injector=TransientSlowdown(probability=0.2, mean_delay_seconds=0.5),
            network=SimpleNetwork(),
            seed=seed,
        )
        result = Engine().run(
            RunSpec(
                scheme="heter_aware",
                cluster="Cluster-B",
                num_stragglers=1,
                total_samples=1024,
                num_iterations=4,
                straggler=StragglerSpec(
                    "transient", {"probability": 0.2, "mean_delay_seconds": 0.5}
                ),
                seed=seed,
            )
        )
        np.testing.assert_array_equal(result.trace.durations, legacy.durations)


class TestRngVersionAndKernelCache:
    """rng_version dispatch and the process-wide timing-kernel cache."""

    def test_v2_timing_run_is_deterministic(self):
        spec = RunSpec(num_iterations=10, total_samples=1024, rng_version=2, seed=5)
        a = Engine().run(spec)
        b = Engine().run(spec)
        np.testing.assert_array_equal(a.trace.durations, b.trace.durations)
        assert a.trace.metadata["rng_version"] == 2

    def test_v2_differs_from_v1_but_is_statistically_close(self):
        base = RunSpec(num_iterations=400, total_samples=1024, seed=5)
        v1 = Engine().run(base)
        v2 = Engine().run(base.replace(rng_version=2))
        assert not np.array_equal(v1.trace.durations, v2.trace.durations)
        assert v2.mean_iteration_time == pytest.approx(
            v1.mean_iteration_time, rel=0.1
        )

    def test_v1_results_do_not_carry_rng_version_metadata(self):
        result = Engine().run(RunSpec(num_iterations=3, total_samples=512))
        assert "rng_version" not in result.trace.metadata

    def test_sweep_reuses_kernels_across_delay_values(self):
        Engine.clear_timing_kernel_cache()
        cache = Engine.timing_kernel_cache()
        engine = Engine()
        spec = RunSpec(
            num_iterations=4,
            total_samples=1024,
            straggler=StragglerSpec(
                "artificial_delay", {"num_stragglers": 1, "delay_seconds": 1.0}
            ),
            seed=0,
        )
        engine.sweep(
            spec,
            straggler=[
                StragglerSpec(
                    "artificial_delay",
                    {"num_stragglers": 1, "delay_seconds": delay},
                )
                for delay in (0.5, 1.0, 2.0, 4.0)
            ],
        )
        # One kernel build for the first delay value, cache hits after.
        assert cache.misses == 1
        assert cache.hits == 3

    def test_cached_runs_bit_identical_to_cold_cache(self):
        spec = RunSpec(num_iterations=6, total_samples=1024, seed=9)
        Engine.clear_timing_kernel_cache()
        cold = Engine().run(spec)
        warm = Engine().run(spec)
        assert Engine.timing_kernel_cache().hits >= 1
        np.testing.assert_array_equal(cold.trace.durations, warm.trace.durations)

    def test_nearby_network_specs_get_correct_kernels(self):
        # Regression: the kernel cache must not serve a kernel built for a
        # different network latency (describe()-based keys rounded it away).
        def run(latency):
            return Engine().run(
                RunSpec(
                    num_iterations=4,
                    total_samples=1024,
                    network={"kind": "simple", "params": {"latency_seconds": latency}},
                    seed=0,
                )
            )

        warm_a, warm_b = run(0.005), run(0.00504)
        Engine.clear_timing_kernel_cache()
        cold_b = run(0.00504)
        np.testing.assert_array_equal(
            warm_b.trace.durations, cold_b.trace.durations
        )
        assert not np.array_equal(warm_a.trace.durations, warm_b.trace.durations)

    def test_v2_training_mode_runs_and_differs_from_v1(self):
        base = RunSpec(
            scheme="cyclic",
            mode="training",
            cluster="Cluster-A",
            num_iterations=3,
            total_samples=256,
            seed=2,
        )
        v1 = Engine().run(base)
        v2 = Engine().run(base.replace(rng_version=2))
        assert v2.trace.num_iterations == 3
        assert np.isfinite(v2.final_loss)
        assert not np.array_equal(v1.trace.durations, v2.trace.durations)


class TestTrainingEquivalence:
    @pytest.mark.parametrize("scheme", ["naive", "heter_aware", "ssp"])
    def test_matches_run_scheme(self, scheme):
        seed = 0
        preset = get_workload("blobs_softmax")
        cluster = build_cluster("Cluster-A", rng=seed)
        dataset = preset.make_dataset(256, seed=seed)
        config = TrainingConfig(
            num_iterations=4,
            num_stragglers=1,
            optimizer_factory=lambda: SGD(learning_rate=0.5),
            straggler_injector=TransientSlowdown(
                probability=0.05, mean_delay_seconds=0.5
            ),
            network=SimpleNetwork(),
            seed=seed,
            loss_eval_samples=128,
        )
        legacy = run_scheme(
            scheme,
            model_factory=lambda: preset.make_model(dataset, seed=seed),
            dataset=dataset,
            cluster=cluster,
            config=config,
            ssp_staleness=3,
            ssp_batch_size=8,
        )
        result = Engine().run(
            RunSpec(
                mode="training",
                scheme=scheme,
                cluster="Cluster-A",
                workload="blobs_softmax",
                total_samples=256,
                num_iterations=4,
                num_stragglers=1,
                straggler=StragglerSpec(
                    "transient", {"probability": 0.05, "mean_delay_seconds": 0.5}
                ),
                learning_rate=0.5,
                ssp_staleness=3,
                ssp_batch_size=8,
                loss_eval_samples=128,
                seed=seed,
            )
        )
        np.testing.assert_allclose(result.trace.durations, legacy.durations)
        np.testing.assert_allclose(result.trace.losses, legacy.losses)


class TestSweepAndCompare:
    def test_compare_runs_every_scheme(self):
        base = RunSpec(num_iterations=2, total_samples=64, num_stragglers=0, seed=0)
        runs = Engine().compare(base, ["naive", "heter_aware"])
        assert set(runs) == {"naive", "heter_aware"}
        assert all(r.completed for r in runs.values())

    def test_sweep_cartesian_product(self):
        base = RunSpec(num_iterations=2, total_samples=64, num_stragglers=0, seed=0)
        results = Engine().sweep(
            base, scheme=["naive", "heter_aware"], seed=[0, 1, 2]
        )
        assert len(results) == 6
        assert [r.spec.scheme for r in results] == ["naive"] * 3 + ["heter_aware"] * 3
        assert [r.spec.seed for r in results] == [0, 1, 2, 0, 1, 2]

    def test_sweep_without_axes_runs_once(self):
        base = RunSpec(num_iterations=2, total_samples=64, num_stragglers=0, seed=0)
        results = Engine().sweep(base)
        assert len(results) == 1

    def test_custom_vcpu_counts_cluster(self):
        """A spec with explicit vcpu_counts runs without registry lookup."""
        result = Engine().run(
            RunSpec(
                cluster="tiny",
                cluster_options={"vcpu_counts": {4: 2, 8: 1}},
                num_iterations=2,
                total_samples=60,
                num_stragglers=0,
                seed=0,
            )
        )
        assert result.trace.metadata["num_workers"] == 3

    def test_composite_straggler_accepts_kind_strings(self):
        from repro.api import build_injector

        injector = build_injector(
            StragglerSpec(
                "composite",
                {"parts": ["transient",
                           {"kind": "artificial_delay",
                            "params": {"delay_seconds": 1.0}}]},
            )
        )
        assert "Composite" in injector.describe()

    def test_paired_seeds_share_conditions(self):
        """Two schemes with the same seed see identical timing jitter."""
        base = RunSpec(num_iterations=3, total_samples=1024, seed=11)
        runs = Engine().compare(base, ["heter_aware", "group_based"])
        a = runs["heter_aware"].trace
        b = runs["group_based"].trace
        assert a.metadata["num_partitions"] == b.metadata["num_partitions"]
