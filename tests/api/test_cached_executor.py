"""The ``cached`` executor: resumable sweeps with zero recomputation.

The wrapper's contract has three parts: results are bit-identical to a
plain serial sweep (store round-trips included), a warm store answers
every cacheable spec from disk (hits == specs, zero inner computation),
and specs with ``seed=None`` bypass the store entirely.
"""

from __future__ import annotations

import json

import pytest

from repro.api import CachedExecutor, Engine, RunSpec, StragglerSpec
from repro.store import FileRunStore


def results_json(results) -> str:
    # to_json (json_default) rather than default=repr: the store round-trip
    # normalises numpy scalars to Python ones, exactly as JSON does.
    return json.dumps([r.to_json() for r in results])


@pytest.fixture(scope="module")
def engine() -> Engine:
    return Engine()


@pytest.fixture()
def store(tmp_path) -> FileRunStore:
    return FileRunStore(tmp_path / "store")


@pytest.fixture(scope="module")
def timing_spec() -> RunSpec:
    # rng_version=2 + explicit seed: stackable, so the sweep planner hands
    # the executor whole groups and run_groups is exercised.
    return RunSpec(
        scheme="naive",
        num_iterations=6,
        total_samples=512,
        straggler=StragglerSpec(
            "artificial_delay", {"num_stragglers": 1, "delay_seconds": 1.0}
        ),
        rng_version=2,
        seed=3,
    )


@pytest.fixture(scope="module")
def training_spec() -> RunSpec:
    return RunSpec(
        mode="training",
        scheme="ssp",
        workload="blobs_softmax",
        total_samples=128,
        num_iterations=3,
        num_stragglers=0,
        loss_eval_samples=64,
        rng_version=2,
        seed=1,
    )


class TestSweepResume:
    def test_timing_sweep_cold_then_warm(self, engine, store, timing_spec):
        seeds = list(range(8))
        plain = engine.sweep(timing_spec, seed=seeds)

        cold = CachedExecutor(store=store)
        cold_results = engine.sweep(timing_spec, executor=cold, seed=seeds)
        assert (cold.hits, cold.misses, cold.uncacheable) == (0, 8, 0)
        assert results_json(cold_results) == results_json(plain)

        warm = CachedExecutor(store=store)
        warm_results = engine.sweep(timing_spec, executor=warm, seed=seeds)
        assert (warm.hits, warm.misses, warm.uncacheable) == (8, 0, 0)
        assert results_json(warm_results) == results_json(plain)

    def test_training_sweep_cold_then_warm(self, engine, store, training_spec):
        seeds = [1, 2, 3]
        plain = engine.sweep(training_spec, seed=seeds)

        cold = CachedExecutor(store=store)
        cold_results = engine.sweep(training_spec, executor=cold, seed=seeds)
        assert (cold.hits, cold.misses) == (0, 3)
        assert results_json(cold_results) == results_json(plain)

        warm = CachedExecutor(store=store)
        warm_results = engine.sweep(training_spec, executor=warm, seed=seeds)
        assert (warm.hits, warm.misses) == (3, 0)
        assert results_json(warm_results) == results_json(plain)

    def test_mixed_hit_miss_sweep(self, engine, store, timing_spec):
        first = CachedExecutor(store=store)
        engine.sweep(timing_spec, executor=first, seed=[0, 1, 2])

        second = CachedExecutor(store=store)
        results = engine.sweep(timing_spec, executor=second, seed=[0, 1, 2, 3, 4])
        assert (second.hits, second.misses) == (3, 2)
        plain = engine.sweep(timing_spec, seed=[0, 1, 2, 3, 4])
        assert results_json(results) == results_json(plain)

    def test_mixed_axes_sweep(self, engine, store, timing_spec):
        """Heterogeneous sweeps (several schemes) cache per-spec too."""
        axes = {"scheme": ["naive", "cyclic"], "seed": [0, 1]}
        cold = CachedExecutor(store=store)
        cold_results = engine.sweep(timing_spec, executor=cold, **axes)
        assert (cold.hits, cold.misses) == (0, 4)

        warm = CachedExecutor(store=store)
        warm_results = engine.sweep(timing_spec, executor=warm, **axes)
        assert (warm.hits, warm.misses) == (4, 0)
        assert results_json(warm_results) == results_json(cold_results)
        assert results_json(warm_results) == results_json(
            engine.sweep(timing_spec, **axes)
        )


class TestRunMany:
    def test_run_many_resumes(self, engine, store, timing_spec):
        specs = [timing_spec.replace(seed=s) for s in (10, 11)]
        cold = CachedExecutor(store=store)
        cold_results = engine.run_many(specs, executor=cold)
        assert (cold.hits, cold.misses) == (0, 2)

        warm = CachedExecutor(store=store)
        warm_results = engine.run_many(specs, executor=warm)
        assert (warm.hits, warm.misses) == (2, 0)
        assert results_json(warm_results) == results_json(cold_results)
        assert results_json(warm_results) == results_json(engine.run_many(specs))

    def test_named_executor_uses_env_store(
        self, engine, timing_spec, tmp_path, monkeypatch
    ):
        """``executor="cached"`` alone resolves the store from the env."""
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "env-store"))
        first = engine.sweep(timing_spec, executor="cached", seed=[0, 1])
        second = engine.sweep(timing_spec, executor="cached", seed=[0, 1])
        assert results_json(first) == results_json(second)
        assert FileRunStore(tmp_path / "env-store").stats()["entries"] == 2


class TestUncacheable:
    def test_seed_none_bypasses_store(self, engine, store):
        spec = RunSpec(scheme="naive", num_iterations=2, total_samples=256, seed=None)
        executor = CachedExecutor(store=store)
        engine.run_many([spec, spec], executor=executor)
        assert (executor.hits, executor.misses, executor.uncacheable) == (0, 0, 2)
        assert store.fingerprints() == ()


class TestInnerExecutor:
    def test_wraps_inner_transport(self, engine, store, timing_spec):
        seeds = [0, 1, 2, 3]
        cold = CachedExecutor(inner="process_shm", store=store)
        assert cold.requires_subprocess
        cold_results = engine.sweep(timing_spec, executor=cold, seed=seeds)
        assert (cold.hits, cold.misses) == (0, 4)

        warm = CachedExecutor(inner="process_shm", store=store)
        warm_results = engine.sweep(timing_spec, executor=warm, seed=seeds)
        assert (warm.hits, warm.misses) == (4, 0)
        assert results_json(warm_results) == results_json(cold_results)
        assert results_json(warm_results) == results_json(
            engine.sweep(timing_spec, seed=seeds)
        )

    def test_is_registered_executor(self):
        from repro.api import EXECUTORS
        from repro.api.executors import resolve_executor

        assert EXECUTORS.get("cached") is CachedExecutor
        assert isinstance(resolve_executor("cached"), CachedExecutor)
