"""Parallel ``Engine.sweep`` / ``Engine.compare``: bit-identical to serial.

Every run derives all randomness from its spec's seed, so distributing the
runs over a process pool must change wall-clock time only.  The comparison
serialises results to JSON (NaN-safe) and demands exact textual equality —
no tolerance.
"""

from __future__ import annotations

import json

import pytest

from repro.api import Engine, RunSpec
from repro.api.engine import EngineError, _run_spec_in_subprocess


def results_json(results) -> str:
    return json.dumps(
        [r.to_dict() for r in results], default=repr, sort_keys=True
    )


@pytest.fixture(scope="module")
def engine() -> Engine:
    return Engine()


@pytest.fixture(scope="module")
def base_spec() -> RunSpec:
    return RunSpec(num_iterations=6, total_samples=512, seed=3)


class TestParallelSweep:
    def test_parallel_sweep_bit_identical_to_serial(self, engine, base_spec):
        axes = {"scheme": ["naive", "cyclic", "heter_aware"], "seed": [0, 1]}
        serial = engine.sweep(base_spec, **axes)
        parallel = engine.sweep(base_spec, parallel=2, **axes)
        assert len(serial) == len(parallel) == 6
        assert results_json(serial) == results_json(parallel)

    def test_parallel_compare_bit_identical_to_serial(self, engine, base_spec):
        schemes = ["naive", "heter_aware"]
        serial = engine.compare(base_spec, schemes)
        parallel = engine.compare(base_spec, schemes, parallel=2)
        assert list(serial) == list(parallel) == schemes
        assert results_json(serial.values()) == results_json(parallel.values())

    def test_sweep_without_axes_runs_once(self, engine, base_spec):
        results = engine.sweep(base_spec, parallel=2)
        assert len(results) == 1
        assert results_json(results) == results_json([engine.run(base_spec)])

    def test_parallel_true_and_int_both_accepted(self, engine, base_spec):
        reference = engine.run_many([base_spec])
        assert results_json(
            engine.run_many([base_spec], parallel=True)
        ) == results_json(reference)

    def test_parallel_zero_and_one_mean_serial(self, engine, base_spec):
        for value in (0, 1, False, None):
            assert engine._resolve_parallel(value, 4) == 1

    def test_worker_count_capped_by_spec_count(self, engine):
        # parallel=N with N > len(specs) must not spawn idle pool workers.
        assert engine._resolve_parallel(16, 3) == 3
        assert engine._resolve_parallel(64, 2) == 2
        # parallel=True resolves to cpu_count, still capped by the spec count.
        assert 1 <= engine._resolve_parallel(True, 2) <= 2

    def test_overprovisioned_parallel_still_bit_identical(self, engine, base_spec):
        specs = [base_spec, base_spec.replace(seed=4)]
        reference = engine.run_many(specs)
        assert results_json(
            engine.run_many(specs, parallel=64)
        ) == results_json(reference)

    def test_sweep_and_compare_resolve_parallel_identically(self, engine, base_spec):
        # The documented contract: compare and sweep route their `parallel`
        # argument through run_many's resolution rule, nothing else.
        for value in (None, False, 0, 1, True, 2, 5):
            sweep = engine.sweep(
                base_spec, parallel=value, scheme=["naive", "cyclic"]
            )
            compare = engine.compare(
                base_spec, ["naive", "cyclic"], parallel=value
            )
            assert results_json(sweep) == results_json(list(compare.values()))

    def test_negative_parallel_rejected(self, engine, base_spec):
        with pytest.raises(EngineError, match="non-negative"):
            engine.run_many([base_spec], parallel=-2)

    def test_injected_backends_cannot_parallelise(self, base_spec):
        fake = Engine(backends={"timing": lambda spec: None})
        with pytest.raises(EngineError, match="registry-backed"):
            fake.run_many([base_spec, base_spec], parallel=2)

    def test_subprocess_worker_round_trips_spec(self, engine, base_spec):
        result = _run_spec_in_subprocess(base_spec.to_dict())
        assert results_json([result]) == results_json([engine.run(base_spec)])

    def test_invalid_spec_fails_fast_in_parent(self, engine, base_spec):
        bad = base_spec.replace(scheme="no_such_scheme")
        with pytest.raises(EngineError, match="unknown scheme"):
            engine.run_many([base_spec, bad], parallel=2)
