"""RunResult: uniform metrics and lossless JSON round-trips."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.api import (
    RESULT_SCHEMA_VERSION,
    Engine,
    ResultError,
    RunResult,
    RunSpec,
    StragglerSpec,
)


@pytest.fixture(scope="module")
def timing_result() -> RunResult:
    return Engine().run(
        RunSpec(
            scheme="heter_aware",
            num_iterations=4,
            total_samples=1024,
            seed=0,
        )
    )


@pytest.fixture(scope="module")
def training_result() -> RunResult:
    return Engine().run(
        RunSpec(
            mode="training",
            scheme="naive",
            workload="blobs_softmax",
            total_samples=128,
            num_iterations=3,
            num_stragglers=0,
            loss_eval_samples=64,
            seed=0,
        )
    )


class TestMetrics:
    def test_uniform_metric_keys(self, timing_result, training_result):
        for result in (timing_result, training_result):
            for key in (
                "num_iterations",
                "mean_iteration_time",
                "total_time",
                "resource_usage",
                "completed",
                "final_loss",
            ):
                assert key in result.metrics

    def test_timing_mode_has_nan_loss(self, timing_result):
        assert math.isnan(timing_result.final_loss)

    def test_training_mode_has_real_loss(self, training_result):
        assert math.isfinite(training_result.final_loss)

    def test_effective_total_samples_recorded(self, timing_result):
        assert timing_result.metrics["effective_total_samples"] == 1024

    def test_convenience_accessors(self, timing_result):
        assert timing_result.scheme == "heter_aware"
        assert timing_result.completed
        assert timing_result.mean_iteration_time > 0
        assert 0 < timing_result.resource_usage <= 1


class TestRoundTrip:
    def test_timing_round_trip(self, timing_result):
        restored = RunResult.from_json(timing_result.to_json())
        assert restored.spec == timing_result.spec
        np.testing.assert_array_equal(
            restored.trace.durations, timing_result.trace.durations
        )
        for key, value in timing_result.metrics.items():
            restored_value = restored.metrics[key]
            if isinstance(value, float) and math.isnan(value):
                assert math.isnan(restored_value)
            else:
                assert restored_value == value

    def test_training_round_trip(self, training_result):
        restored = RunResult.from_json(training_result.to_json())
        assert restored.spec == training_result.spec
        np.testing.assert_array_equal(
            restored.trace.losses, training_result.trace.losses
        )
        np.testing.assert_array_equal(
            restored.trace.durations, training_result.trace.durations
        )

    def test_round_trip_survives_stalled_runs(self):
        """Infinite durations (naive under a fault) serialize and come back."""
        result = Engine().run(
            RunSpec(
                scheme="naive",
                num_iterations=2,
                total_samples=64,
                num_stragglers=1,
                straggler=StragglerSpec(
                    "artificial_delay",
                    {"num_stragglers": 1, "delay_seconds": float("inf")},
                ),
                seed=0,
            )
        )
        assert not result.completed
        restored = RunResult.from_json(result.to_json())
        assert np.isinf(restored.trace.durations).all()
        assert restored.metrics["stalled_iterations"] == 2

    def test_json_is_plain_data(self, timing_result):
        payload = json.loads(timing_result.to_json())
        assert set(payload) == {"schema_version", "spec", "trace", "metrics"}
        assert payload["schema_version"] == 2
        assert isinstance(payload["trace"]["records"], list)
        # numpy scalars in trace metadata must have been converted
        assert all(
            isinstance(load, int) for load in payload["trace"]["metadata"]["loads"]
        )

    def test_summary_drops_nan(self, timing_result):
        summary = timing_result.summary()
        assert "final_loss" not in summary
        assert summary["scheme"] == "heter_aware"


class TestSchemaVersion:
    def test_current_version_is_two(self):
        assert RESULT_SCHEMA_VERSION == 2

    def test_v1_payload_loads(self, timing_result):
        """Historical payloads (no schema_version key) still deserialize."""
        payload = json.loads(timing_result.to_json())
        del payload["schema_version"]
        restored = RunResult.from_dict(payload)
        assert restored.spec == timing_result.spec
        np.testing.assert_array_equal(
            restored.trace.durations, timing_result.trace.durations
        )

    @pytest.mark.parametrize(
        "version", [0, RESULT_SCHEMA_VERSION + 1, "2", 2.0, None]
    )
    def test_unreadable_versions_raise(self, timing_result, version):
        payload = json.loads(timing_result.to_json())
        payload["schema_version"] = version
        with pytest.raises(ResultError, match="schema_version"):
            RunResult.from_dict(payload)
