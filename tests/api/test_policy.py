"""ExecutionPolicy: one resolution rule behind every execution entry point.

The redesign collapses the legacy ``parallel=``/``executor=`` pair into
one policy object.  Back-compat is the contract: every legacy combination
must resolve to exactly the historical behaviour (property-tested against
the historical worker-count rule), conflicting combinations must raise a
named :class:`EngineError` instead of silently preferring one knob, and
``policy=`` must be accepted — exclusively — by ``run_many``, ``sweep``
and ``compare`` alike.
"""

from __future__ import annotations

import itertools
import json

import pytest

from repro.api import Engine, ExecutionPolicy, RunSpec, SerialExecutor
from repro.api.engine import EngineError, _available_cpu_count
from repro.api.executors import ProcessExecutor


def results_json(results) -> str:
    return json.dumps([r.to_json() for r in results])


@pytest.fixture(scope="module")
def engine() -> Engine:
    return Engine()


@pytest.fixture(scope="module")
def spec() -> RunSpec:
    return RunSpec(scheme="naive", num_iterations=3, total_samples=256, seed=0)


class TestWorkerCountRule:
    """resolve(parallel).worker_count must *be* the historical rule."""

    PARALLEL_VALUES = (None, False, True, 0, 1, 2, 3, 7, 64)
    NUM_UNITS = (1, 2, 5, 16)

    @pytest.mark.parametrize(
        "parallel,num_units",
        list(itertools.product(PARALLEL_VALUES, NUM_UNITS)),
        ids=lambda value: repr(value),
    )
    def test_matches_legacy_rule(self, parallel, num_units):
        policy = ExecutionPolicy.resolve(parallel=parallel)
        assert policy.worker_count(num_units) == Engine._resolve_parallel(
            parallel, num_units
        )

    def test_true_means_one_per_cpu(self):
        policy = ExecutionPolicy.resolve(parallel=True)
        cpus = _available_cpu_count()
        assert policy.worker_count(10_000) == min(cpus, 10_000)

    def test_negative_raises(self):
        with pytest.raises(EngineError, match="non-negative"):
            ExecutionPolicy.resolve(parallel=-1).worker_count(4)

    def test_explicit_executor_defaults_to_pool_width(self):
        policy = ExecutionPolicy.resolve(executor="serial")
        assert policy.worker_count(4) == min(_available_cpu_count(), 4)
        assert ExecutionPolicy.resolve(parallel=2, executor="serial").worker_count(
            4
        ) == 2


class TestPlan:
    def test_default_serial(self):
        executor, workers = ExecutionPolicy().plan(4)
        assert executor is None
        assert workers == 1

    def test_parallel_picks_process_pool(self):
        executor, workers = ExecutionPolicy(workers=2).plan(4)
        assert isinstance(executor, ProcessExecutor)
        assert workers == 2

    def test_explicit_executor_wins(self):
        serial = SerialExecutor()
        executor, _ = ExecutionPolicy(executor=serial, workers=2).plan(4)
        assert executor is serial


class TestConflicts:
    def test_executor_with_parallel_zero(self):
        with pytest.raises(EngineError, match="conflicting execution policy"):
            ExecutionPolicy.resolve(parallel=0, executor="serial")

    def test_executor_with_parallel_false(self):
        with pytest.raises(EngineError, match="conflicting execution policy"):
            ExecutionPolicy.resolve(parallel=False, executor=SerialExecutor())

    @pytest.mark.parametrize("entry", ["run_many", "sweep", "compare"])
    def test_policy_plus_legacy_knobs_raise(self, engine, spec, entry):
        policy = ExecutionPolicy()
        with pytest.raises(EngineError, match="policy= or the legacy"):
            if entry == "run_many":
                engine.run_many([spec], parallel=1, policy=policy)
            elif entry == "sweep":
                engine.sweep(spec, executor="serial", policy=policy, seed=[0])
            else:
                engine.compare(spec, ["naive"], parallel=1, policy=policy)

    def test_policy_must_be_a_policy(self, engine, spec):
        with pytest.raises(EngineError, match="must be an ExecutionPolicy"):
            engine.run_many([spec], policy="serial")


class TestEntryPoints:
    """policy= and the legacy sugar produce bit-identical results."""

    def test_run_many(self, engine, spec):
        specs = [spec.replace(seed=s) for s in (0, 1)]
        legacy = engine.run_many(specs)
        via_policy = engine.run_many(specs, policy=ExecutionPolicy())
        pooled = engine.run_many(
            specs, policy=ExecutionPolicy(executor=SerialExecutor(), workers=1)
        )
        assert results_json(legacy) == results_json(via_policy)
        assert results_json(legacy) == results_json(pooled)

    def test_sweep(self, engine, spec):
        axes = {"scheme": ["naive", "cyclic"], "seed": [0, 1]}
        legacy = engine.sweep(spec, **axes)
        via_policy = engine.sweep(spec, policy=ExecutionPolicy(), **axes)
        via_executor_policy = engine.sweep(
            spec, policy=ExecutionPolicy(executor=SerialExecutor()), **axes
        )
        assert results_json(legacy) == results_json(via_policy)
        assert results_json(legacy) == results_json(via_executor_policy)

    def test_compare(self, engine, spec):
        schemes = ["naive", "heter_aware"]
        legacy = engine.compare(spec, schemes)
        via_policy = engine.compare(spec, schemes, policy=ExecutionPolicy())
        assert results_json(list(legacy.values())) == results_json(
            list(via_policy.values())
        )

    def test_policy_is_frozen(self):
        policy = ExecutionPolicy()
        with pytest.raises(Exception):
            policy.workers = 2  # type: ignore[misc]
