"""The sweep planner: stacked dispatch is invisible except in wall-clock.

``Engine.sweep`` partitions its cartesian product into stackable groups and
routes each group through one run-stacked kernel call.  The contract pinned
here: every result is bit-identical (JSON-exact) to the per-run ``run_many``
path, regardless of how the planner grouped the specs — and everything the
planner cannot stack (rng_version=1, coded-protocol training, injected
backends) silently falls back to the per-run path.
"""

from __future__ import annotations

import json

import pytest

from repro.api import Engine, RunSpec
from repro.api.engine import EngineError
from repro.api.spec import NetworkSpec, StragglerSpec


def results_json(results) -> str:
    return json.dumps(
        [r.to_dict() for r in results], default=repr, sort_keys=True
    )


@pytest.fixture(scope="module")
def engine() -> Engine:
    return Engine()


def assert_sweep_matches_run_many(engine, base, **axes):
    swept = engine.sweep(base, **axes)
    specs = [r.spec for r in swept]
    reference = engine.run_many(specs)
    assert results_json(swept) == results_json(reference)
    return swept


class TestStackedTimingSweeps:
    def test_seed_sweep_pinned_cluster(self, engine):
        # One strategy (pinned cluster options), many seeds: the canonical
        # stackable group.
        base = RunSpec(
            num_iterations=12,
            total_samples=1024,
            cluster_options={"rng": 123},
            rng_version=2,
            seed=0,
        )
        assert_sweep_matches_run_many(engine, base, seed=list(range(6)))

    def test_seed_sweep_per_seed_clusters(self, engine):
        # Default cluster options derive the cluster from each seed; the
        # naive scheme is throughput-independent, so the specs still group
        # into one stack with per-run clusters.
        base = RunSpec(
            scheme="naive",
            num_iterations=12,
            total_samples=1024,
            rng_version=2,
            seed=0,
        )
        assert_sweep_matches_run_many(engine, base, seed=list(range(6)))

    def test_delay_axis_with_stochastic_network(self, engine):
        base = RunSpec(
            num_iterations=10,
            total_samples=1024,
            network=NetworkSpec("lognormal", {}),
            rng_version=2,
            seed=7,
        )
        assert_sweep_matches_run_many(
            engine,
            base,
            straggler=[
                StragglerSpec(
                    "artificial_delay",
                    {"num_stragglers": 1, "delay_seconds": delay},
                )
                for delay in (0.5, 1.0, 2.0)
            ],
            seed=[7, 8],
        )

    def test_fail_stop_rows_survive_stacking(self, engine):
        base = RunSpec(
            num_iterations=10,
            total_samples=1024,
            straggler=StragglerSpec("fail_stop", {"failures": {1: 4}}),
            rng_version=2,
            seed=0,
        )
        swept = assert_sweep_matches_run_many(engine, base, seed=[0, 1, 2])
        assert all(r.trace.metadata["rng_version"] == 2 for r in swept)


class TestStackedTrainingSweeps:
    @pytest.mark.parametrize("scheme", ["ssp", "dyn_ssp", "async"])
    def test_event_driven_protocols_stack(self, engine, scheme):
        base = RunSpec(
            mode="training",
            scheme=scheme,
            num_iterations=6,
            total_samples=256,
            rng_version=2,
            seed=0,
        )
        assert_sweep_matches_run_many(engine, base, seed=[0, 1, 2])

    def test_coded_protocol_training_falls_back(self, engine):
        # Gradient-coded training has no stacked path; the planner must
        # route it through run_many unchanged.
        base = RunSpec(
            mode="training",
            scheme="heter_aware",
            num_iterations=4,
            total_samples=256,
            rng_version=2,
            seed=0,
        )
        assert_sweep_matches_run_many(engine, base, seed=[0, 1])


class TestPlannerFallbacks:
    def test_v1_specs_use_the_per_run_path(self, engine):
        base = RunSpec(num_iterations=6, total_samples=512, seed=0)
        assert_sweep_matches_run_many(
            engine, base, seed=[0, 1, 2], scheme=["naive", "cyclic"]
        )

    def test_mixed_v1_v2_sweep(self, engine):
        base = RunSpec(num_iterations=6, total_samples=512, seed=0)
        assert_sweep_matches_run_many(
            engine, base, rng_version=[1, 2], seed=[0, 1, 2]
        )

    def test_injected_backends_never_stack(self):
        calls = []

        def backend(spec):
            calls.append(spec)
            return Engine().run(spec).trace

        fake = Engine(backends={"timing": backend})
        results = fake.sweep(
            RunSpec(num_iterations=4, total_samples=512, rng_version=2, seed=0),
            seed=[0, 1, 2],
        )
        assert len(calls) == 3 and len(results) == 3

    def test_parallel_composes_with_stacking(self, engine):
        # Stacked groups run in-process; the remainder follows run_many's
        # parallel rule.  Either way the results are bit-identical.
        base = RunSpec(
            num_iterations=8,
            total_samples=512,
            cluster_options={"rng": 5},
            rng_version=2,
            seed=0,
        )
        axes = {"seed": [0, 1, 2, 3], "rng_version": [1, 2]}
        serial = engine.sweep(base, **axes)
        parallel = engine.sweep(base, parallel=2, **axes)
        assert results_json(serial) == results_json(parallel)

    def test_results_keep_sweep_order(self, engine):
        base = RunSpec(
            num_iterations=4,
            total_samples=512,
            cluster_options={"rng": 5},
            rng_version=2,
            seed=0,
        )
        results = engine.sweep(base, scheme=["naive", "cyclic"], seed=[3, 4])
        assert [(r.spec.scheme, r.spec.seed) for r in results] == [
            ("naive", 3),
            ("naive", 4),
            ("cyclic", 3),
            ("cyclic", 4),
        ]


class TestSweepValidation:
    def test_empty_axis_raises(self, engine):
        base = RunSpec(num_iterations=4, total_samples=512, seed=0)
        with pytest.raises(EngineError, match="has no values"):
            engine.sweep(base, seed=[])

    def test_empty_axis_names_the_axis(self, engine):
        base = RunSpec(num_iterations=4, total_samples=512, seed=0)
        with pytest.raises(EngineError, match="'scheme'"):
            engine.sweep(base, scheme=[], seed=[0, 1])
